//! Dependency-free serving observability (`PipelineStats`).
//!
//! The localization server counts work done at every stage of the pipeline
//! (reports in, readings extracted, judgements formed, constraints built,
//! simplex iterations, relaxations that had to pay) and tracks per-stage
//! latency in power-of-two histograms. Everything is an [`AtomicU64`] with
//! relaxed ordering: recording from the `localize_batch` worker threads is
//! wait-free and the *totals* are exact regardless of interleaving — only
//! the wall-clock histograms vary run to run.
//!
//! [`PipelineStats::snapshot`] returns a plain-data [`StatsSnapshot`] whose
//! [`CounterTotals`] half is deterministic for a deterministic workload; the
//! batch-determinism integration test relies on that split.

use crate::estimator::{EstimateQuality, FailureCause};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts samples in
/// `[2^i, 2^{i+1})` nanoseconds, with the last bucket absorbing everything
/// ≥ 2³⁰ ns (~1 s) — far beyond any single pipeline stage here.
pub const LATENCY_BUCKETS: usize = 31;

/// Wait-free power-of-two latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    total_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Index of the bucket covering `ns` (0 ns maps to bucket 0).
    fn bucket_index(ns: u64) -> usize {
        (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Copies the current bucket counts out.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            total_ns: self.total_ns.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

/// Plain-data copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Bucket `i` counts samples in `[2^i, 2^{i+1})` ns.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Sum of all recorded samples, ns.
    pub total_ns: u64,
}

impl LatencySnapshot {
    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns as f64 / n as f64
        }
    }

    /// Upper edge (ns) of the bucket containing quantile `q ∈ [0, 1]`.
    ///
    /// Power-of-two buckets make this an upper *bound* with at most 2×
    /// resolution error — plenty for spotting stage regressions.
    pub fn quantile_upper_bound_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }
}

/// Number of power-of-two size buckets: bucket `i` counts values in
/// `[2^i, 2^{i+1})`, with the last bucket absorbing everything ≥ 2¹⁶ —
/// far beyond any sane micro-batch.
pub const SIZE_BUCKETS: usize = 17;

/// Wait-free power-of-two histogram for small counts (micro-batch sizes).
#[derive(Debug)]
pub struct SizeHistogram {
    buckets: [AtomicU64; SIZE_BUCKETS],
    total: AtomicU64,
}

impl Default for SizeHistogram {
    fn default() -> Self {
        SizeHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
        }
    }
}

impl SizeHistogram {
    fn bucket_index(v: u64) -> usize {
        (63 - v.max(1).leading_zeros() as usize).min(SIZE_BUCKETS - 1)
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(v, Ordering::Relaxed);
    }

    /// Copies the current bucket counts out.
    pub fn snapshot(&self) -> SizeSnapshot {
        SizeSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            total: self.total.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
    }
}

/// Plain-data copy of a [`SizeHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeSnapshot {
    /// Bucket `i` counts values in `[2^i, 2^{i+1})`.
    pub buckets: [u64; SIZE_BUCKETS],
    /// Sum of all recorded values.
    pub total: u64,
}

impl SizeSnapshot {
    /// Total number of values recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total as f64 / n as f64
        }
    }

    /// Upper edge of the bucket containing quantile `q ∈ [0, 1]` — an
    /// upper bound with at most 2× resolution error, like
    /// [`LatencySnapshot::quantile_upper_bound_ns`].
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << SIZE_BUCKETS
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Deterministic counter totals of a [`StatsSnapshot`].
///
/// For a fixed request stream these are identical whether the server ran
/// serially or across `localize_batch` workers — the counters are pure
/// sums of per-request quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterTotals {
    /// Localization requests served (one per `localize`/`process` call).
    pub requests: u64,
    /// Raw CSI reports offered to PDP extraction.
    pub reports_in: u64,
    /// PDP readings that survived extraction.
    pub readings_extracted: u64,
    /// Pairwise proximity judgements formed.
    pub judgements_formed: u64,
    /// Half-plane constraints assembled (judgement + boundary).
    pub constraints_generated: u64,
    /// Simplex pivot iterations across every relaxation and center LP.
    pub simplex_iterations: u64,
    /// Center LPs that reused the relaxation witness as a warm start and
    /// skipped simplex Phase-1 (one candidate per venue piece per request).
    pub warm_start_hits: u64,
    /// Phase-1 pivots those warm starts avoided (lower-bound estimate).
    pub phase1_pivots_saved: u64,
    /// Requests whose winning piece paid a non-zero relaxation cost.
    pub relaxations_triggered: u64,
    /// Requests that returned an [`crate::estimator::EstimateError`].
    pub estimate_failures: u64,
    /// Estimates served at [`EstimateQuality::Full`].
    pub quality_full: u64,
    /// Estimates degraded to [`EstimateQuality::Region`].
    pub quality_region: u64,
    /// Estimates degraded to [`EstimateQuality::Centroid`].
    pub quality_centroid: u64,
    /// Estimates served at [`EstimateQuality::Predicted`] — answered from
    /// a session's motion model because the request's own readings were
    /// unusable.
    pub quality_predicted: u64,
    /// Requests that hit [`FailureCause::InsufficientJudgements`]
    /// (degraded or failed).
    pub cause_insufficient_judgements: u64,
    /// Requests that hit [`FailureCause::LpInfeasible`].
    pub cause_lp_infeasible: u64,
    /// Requests that hit [`FailureCause::LpNumerical`].
    pub cause_lp_numerical: u64,
    /// Requests that hit [`FailureCause::InvalidInput`].
    pub cause_invalid_input: u64,
    /// Individual readings rejected at the `localize` input boundary
    /// (non-finite PDP or site position).
    pub invalid_readings: u64,
    /// Batches dispatched through the batch entry points (in-process
    /// `localize_batch`/`process_batch` calls and serving micro-batches).
    pub batches_dispatched: u64,
    /// Serving micro-batches whose requests all named the same venue —
    /// the batcher shards by venue, so under multi-venue traffic this
    /// should equal the total and `batches_mixed` should stay zero.
    pub batches_homogeneous: u64,
    /// Serving micro-batches that mixed requests from different venues
    /// (a venue-sharding bug if ever non-zero).
    pub batches_mixed: u64,
    /// Requests rejected by admission control (serving queue full).
    pub queue_rejected: u64,
    /// Requests dropped because they aged past their deadline before
    /// being solved.
    pub deadline_missed: u64,
    /// High-water mark of the serving admission queue depth.
    pub queue_depth_peak: u64,
    /// Admissions that found their dispatch-shard lock held and had to
    /// block for it (sharded batching plane; always 0 on the single-queue
    /// layout, where every admission takes the one global lock).
    pub enqueue_contention: u64,
    /// Micro-batches a batcher pulled from a *sibling* shard because its
    /// own shard ran dry (work stealing in the sharded batching plane).
    pub queue_steals: u64,
    /// High-water mark of any single dispatch shard's queue depth
    /// (sharded batching plane; 0 on the single-queue layout).
    pub shard_depth_peak: u64,
    /// Reply-frame bytes encoded by the serving layer.
    pub reply_bytes_encoded: u64,
    /// Reply-frame bytes encoded into a pooled (reused) buffer rather than
    /// a fresh allocation.
    pub reply_bytes_pooled: u64,
    /// Encode-buffer pool checkouts that reused an existing backing store.
    pub pool_hits: u64,
    /// Encode-buffer pool checkouts that had to allocate (pool empty).
    pub pool_misses: u64,
}

/// Plain-data copy of a [`PipelineStats`], taken by
/// [`PipelineStats::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// The deterministic counters.
    pub counters: CounterTotals,
    /// PDP-extraction stage latency.
    pub extract_latency: LatencySnapshot,
    /// Judgement-formation stage latency.
    pub judge_latency: LatencySnapshot,
    /// Constraint-generation + LP stage latency (the estimator call).
    pub solve_latency: LatencySnapshot,
    /// Distribution of dispatched batch sizes (requests per batch).
    pub batch_sizes: SizeSnapshot,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counters;
        writeln!(f, "pipeline stats")?;
        writeln!(f, "  requests              {}", c.requests)?;
        writeln!(f, "  reports in            {}", c.reports_in)?;
        writeln!(f, "  readings extracted    {}", c.readings_extracted)?;
        writeln!(f, "  judgements formed     {}", c.judgements_formed)?;
        writeln!(f, "  constraints generated {}", c.constraints_generated)?;
        writeln!(f, "  simplex iterations    {}", c.simplex_iterations)?;
        writeln!(f, "  warm-start hits       {}", c.warm_start_hits)?;
        writeln!(f, "  phase-1 pivots saved  {}", c.phase1_pivots_saved)?;
        writeln!(f, "  relaxations triggered {}", c.relaxations_triggered)?;
        writeln!(f, "  estimate failures     {}", c.estimate_failures)?;
        writeln!(
            f,
            "  quality tiers         full {} / region {} / predicted {} / centroid {}",
            c.quality_full, c.quality_region, c.quality_predicted, c.quality_centroid
        )?;
        let causes = [
            ("insufficient judgements", c.cause_insufficient_judgements),
            ("lp infeasible", c.cause_lp_infeasible),
            ("lp numerical", c.cause_lp_numerical),
            ("invalid input", c.cause_invalid_input),
        ];
        if causes.iter().any(|&(_, n)| n > 0) {
            for (name, n) in causes {
                if n > 0 {
                    writeln!(f, "    cause: {name:<19} {n}")?;
                }
            }
        }
        if c.invalid_readings > 0 {
            writeln!(f, "  invalid readings      {}", c.invalid_readings)?;
        }
        if c.batches_dispatched > 0 {
            writeln!(
                f,
                "  batches dispatched    {} (mean size {:.1}, p50 ≤ {}, max ≤ {})",
                c.batches_dispatched,
                self.batch_sizes.mean(),
                self.batch_sizes.quantile_upper_bound(0.50),
                self.batch_sizes.quantile_upper_bound(1.0),
            )?;
        }
        if c.batches_homogeneous > 0 || c.batches_mixed > 0 {
            writeln!(
                f,
                "  batch venue mix       homogeneous {} / mixed {}",
                c.batches_homogeneous, c.batches_mixed
            )?;
        }
        if c.queue_rejected > 0 || c.deadline_missed > 0 || c.queue_depth_peak > 0 {
            writeln!(f, "  queue depth peak      {}", c.queue_depth_peak)?;
            writeln!(f, "  overload rejections   {}", c.queue_rejected)?;
            writeln!(f, "  deadline misses       {}", c.deadline_missed)?;
        }
        if c.queue_steals > 0 || c.enqueue_contention > 0 || c.shard_depth_peak > 0 {
            writeln!(f, "  shard depth peak      {}", c.shard_depth_peak)?;
            writeln!(f, "  queue steals          {}", c.queue_steals)?;
            writeln!(f, "  enqueue contention    {}", c.enqueue_contention)?;
        }
        if c.pool_hits > 0 || c.pool_misses > 0 {
            let checkouts = c.pool_hits + c.pool_misses;
            writeln!(
                f,
                "  reply bytes encoded   {} ({} pooled, pool hit-rate {:.1}%)",
                c.reply_bytes_encoded,
                c.reply_bytes_pooled,
                100.0 * c.pool_hits as f64 / checkouts as f64,
            )?;
        }
        for (name, h) in [
            ("extract", &self.extract_latency),
            ("judge", &self.judge_latency),
            ("solve", &self.solve_latency),
        ] {
            if h.count() > 0 {
                writeln!(
                    f,
                    "  {name:<8} latency     mean {}, p50 ≤ {}, p95 ≤ {}, p99 ≤ {} ({} samples)",
                    fmt_ns(h.mean_ns()),
                    fmt_ns(h.quantile_upper_bound_ns(0.50) as f64),
                    fmt_ns(h.quantile_upper_bound_ns(0.95) as f64),
                    fmt_ns(h.quantile_upper_bound_ns(0.99) as f64),
                    h.count()
                )?;
            }
        }
        Ok(())
    }
}

/// Wait-free counters + histograms for the serving pipeline.
///
/// Shared by reference across batch workers; all methods take `&self`.
#[derive(Debug, Default)]
pub struct PipelineStats {
    requests: AtomicU64,
    reports_in: AtomicU64,
    readings_extracted: AtomicU64,
    judgements_formed: AtomicU64,
    constraints_generated: AtomicU64,
    simplex_iterations: AtomicU64,
    warm_start_hits: AtomicU64,
    phase1_pivots_saved: AtomicU64,
    relaxations_triggered: AtomicU64,
    estimate_failures: AtomicU64,
    quality_full: AtomicU64,
    quality_region: AtomicU64,
    quality_centroid: AtomicU64,
    quality_predicted: AtomicU64,
    cause_insufficient_judgements: AtomicU64,
    cause_lp_infeasible: AtomicU64,
    cause_lp_numerical: AtomicU64,
    cause_invalid_input: AtomicU64,
    invalid_readings: AtomicU64,
    batches_dispatched: AtomicU64,
    batches_homogeneous: AtomicU64,
    batches_mixed: AtomicU64,
    queue_rejected: AtomicU64,
    deadline_missed: AtomicU64,
    queue_depth_peak: AtomicU64,
    enqueue_contention: AtomicU64,
    queue_steals: AtomicU64,
    shard_depth_peak: AtomicU64,
    reply_bytes_encoded: AtomicU64,
    reply_bytes_pooled: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    extract_latency: LatencyHistogram,
    judge_latency: LatencyHistogram,
    solve_latency: LatencyHistogram,
    batch_sizes: SizeHistogram,
}

impl PipelineStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one PDP-extraction stage: `reports` offered, `readings`
    /// kept.
    pub fn record_extract(&self, reports: u64, readings: u64, elapsed: Duration) {
        self.reports_in.fetch_add(reports, Ordering::Relaxed);
        self.readings_extracted
            .fetch_add(readings, Ordering::Relaxed);
        self.extract_latency.record(elapsed);
    }

    /// Records one judgement-formation stage producing `judgements`.
    pub fn record_judge(&self, judgements: u64, elapsed: Duration) {
        self.judgements_formed
            .fetch_add(judgements, Ordering::Relaxed);
        self.judge_latency.record(elapsed);
    }

    /// Records one successful estimator call. `warm_start_hits` and
    /// `phase1_pivots_saved` carry the estimator's per-query warm-start
    /// diagnostics ([`crate::estimator::LocationEstimate`]); `quality` is
    /// the degradation-ladder tier the estimate was served at.
    #[allow(clippy::too_many_arguments)]
    pub fn record_solve(
        &self,
        constraints: u64,
        simplex_iterations: u64,
        warm_start_hits: u64,
        phase1_pivots_saved: u64,
        relaxed: bool,
        quality: EstimateQuality,
        elapsed: Duration,
    ) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.constraints_generated
            .fetch_add(constraints, Ordering::Relaxed);
        self.simplex_iterations
            .fetch_add(simplex_iterations, Ordering::Relaxed);
        self.warm_start_hits
            .fetch_add(warm_start_hits, Ordering::Relaxed);
        self.phase1_pivots_saved
            .fetch_add(phase1_pivots_saved, Ordering::Relaxed);
        if relaxed {
            self.relaxations_triggered.fetch_add(1, Ordering::Relaxed);
        }
        let tier = match quality {
            EstimateQuality::Full => &self.quality_full,
            EstimateQuality::Region => &self.quality_region,
            EstimateQuality::Centroid => &self.quality_centroid,
            EstimateQuality::Predicted => &self.quality_predicted,
        };
        tier.fetch_add(1, Ordering::Relaxed);
        self.solve_latency.record(elapsed);
    }

    /// Records one request answered from a session's motion model
    /// ([`EstimateQuality::Predicted`]) — the estimator never ran, so
    /// only the request and tier counters move.
    pub fn record_predicted(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.quality_predicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Reclassifies one already-recorded centroid-tier solve as
    /// [`EstimateQuality::Predicted`]: the serving layer answered from a
    /// warm session's motion model instead of the centroid the estimator
    /// produced (and counted). The request counter is untouched — the
    /// solve happened, only the served tier changed.
    pub fn promote_centroid_to_predicted(&self) {
        self.quality_centroid.fetch_sub(1, Ordering::Relaxed);
        self.quality_predicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one estimator call that returned an error, by cause.
    pub fn record_failure(&self, cause: FailureCause, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.estimate_failures.fetch_add(1, Ordering::Relaxed);
        self.record_cause(cause);
        self.solve_latency.record(elapsed);
    }

    /// Counts one occurrence of a failure cause — on hard failures *and*
    /// on requests the degradation ladder recovered, so the counters tell
    /// why quality was lost even when an estimate was still served.
    pub fn record_cause(&self, cause: FailureCause) {
        let counter = match cause {
            FailureCause::InsufficientJudgements => &self.cause_insufficient_judgements,
            FailureCause::LpInfeasible => &self.cause_lp_infeasible,
            FailureCause::LpNumerical => &self.cause_lp_numerical,
            FailureCause::InvalidInput => &self.cause_invalid_input,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` readings rejected at the `localize` input boundary.
    pub fn record_invalid_readings(&self, n: u64) {
        self.invalid_readings.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one dispatched batch of `size` requests.
    pub fn record_batch(&self, size: u64) {
        self.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        self.batch_sizes.record(size);
    }

    /// Records the venue composition of one serving micro-batch:
    /// `distinct_venues ≤ 1` counts as homogeneous, anything else as mixed.
    /// The venue-sharding batcher calls this on every dispatch so tests
    /// can assert micro-batches never mix venues.
    pub fn record_batch_composition(&self, distinct_venues: u64) {
        if distinct_venues > 1 {
            self.batches_mixed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.batches_homogeneous.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one request rejected by admission control (queue full).
    pub fn record_overload(&self) {
        self.queue_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request that aged past its deadline before solving.
    pub fn record_deadline_miss(&self) {
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the admission-queue high-water mark to at least `depth`.
    pub fn note_queue_depth(&self, depth: u64) {
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one admission that found its dispatch-shard lock held
    /// (sharded batching plane enqueue contention).
    pub fn record_enqueue_contention(&self) {
        self.enqueue_contention.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one micro-batch stolen from a sibling dispatch shard.
    pub fn record_queue_steal(&self) {
        self.queue_steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the single-shard queue-depth high-water mark to at least
    /// `depth` (sharded batching plane).
    pub fn note_shard_depth(&self, depth: u64) {
        self.shard_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one reply-frame encode of `bytes` into a pool checkout that
    /// either `reused` an existing backing store or had to allocate.
    ///
    /// Serving-layer only (the daemon's reply path); in-process batch runs
    /// never touch these counters, so [`CounterTotals`] determinism across
    /// worker counts is unaffected.
    pub fn record_reply_encode(&self, bytes: u64, reused: bool) {
        self.reply_bytes_encoded.fetch_add(bytes, Ordering::Relaxed);
        if reused {
            self.reply_bytes_pooled.fetch_add(bytes, Ordering::Relaxed);
            self.pool_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.pool_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies the current state out as plain data.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            counters: CounterTotals {
                requests: self.requests.load(Ordering::Relaxed),
                reports_in: self.reports_in.load(Ordering::Relaxed),
                readings_extracted: self.readings_extracted.load(Ordering::Relaxed),
                judgements_formed: self.judgements_formed.load(Ordering::Relaxed),
                constraints_generated: self.constraints_generated.load(Ordering::Relaxed),
                simplex_iterations: self.simplex_iterations.load(Ordering::Relaxed),
                warm_start_hits: self.warm_start_hits.load(Ordering::Relaxed),
                phase1_pivots_saved: self.phase1_pivots_saved.load(Ordering::Relaxed),
                relaxations_triggered: self.relaxations_triggered.load(Ordering::Relaxed),
                estimate_failures: self.estimate_failures.load(Ordering::Relaxed),
                quality_full: self.quality_full.load(Ordering::Relaxed),
                quality_region: self.quality_region.load(Ordering::Relaxed),
                quality_centroid: self.quality_centroid.load(Ordering::Relaxed),
                quality_predicted: self.quality_predicted.load(Ordering::Relaxed),
                cause_insufficient_judgements: self
                    .cause_insufficient_judgements
                    .load(Ordering::Relaxed),
                cause_lp_infeasible: self.cause_lp_infeasible.load(Ordering::Relaxed),
                cause_lp_numerical: self.cause_lp_numerical.load(Ordering::Relaxed),
                cause_invalid_input: self.cause_invalid_input.load(Ordering::Relaxed),
                invalid_readings: self.invalid_readings.load(Ordering::Relaxed),
                batches_dispatched: self.batches_dispatched.load(Ordering::Relaxed),
                batches_homogeneous: self.batches_homogeneous.load(Ordering::Relaxed),
                batches_mixed: self.batches_mixed.load(Ordering::Relaxed),
                queue_rejected: self.queue_rejected.load(Ordering::Relaxed),
                deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
                queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
                enqueue_contention: self.enqueue_contention.load(Ordering::Relaxed),
                queue_steals: self.queue_steals.load(Ordering::Relaxed),
                shard_depth_peak: self.shard_depth_peak.load(Ordering::Relaxed),
                reply_bytes_encoded: self.reply_bytes_encoded.load(Ordering::Relaxed),
                reply_bytes_pooled: self.reply_bytes_pooled.load(Ordering::Relaxed),
                pool_hits: self.pool_hits.load(Ordering::Relaxed),
                pool_misses: self.pool_misses.load(Ordering::Relaxed),
            },
            extract_latency: self.extract_latency.snapshot(),
            judge_latency: self.judge_latency.snapshot(),
            solve_latency: self.solve_latency.snapshot(),
            batch_sizes: self.batch_sizes.snapshot(),
        }
    }

    /// Zeroes every counter and histogram.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.reports_in.store(0, Ordering::Relaxed);
        self.readings_extracted.store(0, Ordering::Relaxed);
        self.judgements_formed.store(0, Ordering::Relaxed);
        self.constraints_generated.store(0, Ordering::Relaxed);
        self.simplex_iterations.store(0, Ordering::Relaxed);
        self.warm_start_hits.store(0, Ordering::Relaxed);
        self.phase1_pivots_saved.store(0, Ordering::Relaxed);
        self.relaxations_triggered.store(0, Ordering::Relaxed);
        self.estimate_failures.store(0, Ordering::Relaxed);
        self.quality_full.store(0, Ordering::Relaxed);
        self.quality_region.store(0, Ordering::Relaxed);
        self.quality_centroid.store(0, Ordering::Relaxed);
        self.quality_predicted.store(0, Ordering::Relaxed);
        self.cause_insufficient_judgements
            .store(0, Ordering::Relaxed);
        self.cause_lp_infeasible.store(0, Ordering::Relaxed);
        self.cause_lp_numerical.store(0, Ordering::Relaxed);
        self.cause_invalid_input.store(0, Ordering::Relaxed);
        self.invalid_readings.store(0, Ordering::Relaxed);
        self.batches_dispatched.store(0, Ordering::Relaxed);
        self.batches_homogeneous.store(0, Ordering::Relaxed);
        self.batches_mixed.store(0, Ordering::Relaxed);
        self.queue_rejected.store(0, Ordering::Relaxed);
        self.deadline_missed.store(0, Ordering::Relaxed);
        self.queue_depth_peak.store(0, Ordering::Relaxed);
        self.enqueue_contention.store(0, Ordering::Relaxed);
        self.queue_steals.store(0, Ordering::Relaxed);
        self.shard_depth_peak.store(0, Ordering::Relaxed);
        self.reply_bytes_encoded.store(0, Ordering::Relaxed);
        self.reply_bytes_pooled.store(0, Ordering::Relaxed);
        self.pool_hits.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
        self.extract_latency.reset();
        self.judge_latency.reset();
        self.solve_latency.reset();
        self.batch_sizes.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            LATENCY_BUCKETS - 1
        );
    }

    #[test]
    fn histogram_counts_and_mean() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(300));
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_ns, 400);
        assert!((s.mean_ns() - 200.0).abs() < 1e-9);
        // 100 ns → bucket 6 ([64, 128)); 300 ns → bucket 8 ([256, 512)).
        assert_eq!(s.buckets[6], 1);
        assert_eq!(s.buckets[8], 1);
    }

    #[test]
    fn quantile_bounds() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100));
        }
        h.record(Duration::from_micros(100));
        let s = h.snapshot();
        assert!(s.quantile_upper_bound_ns(0.5) <= 128);
        assert!(s.quantile_upper_bound_ns(1.0) >= 100_000);
        assert_eq!(
            LatencySnapshot {
                buckets: [0; LATENCY_BUCKETS],
                total_ns: 0,
            }
            .quantile_upper_bound_ns(0.5),
            0
        );
    }

    #[test]
    fn counters_accumulate() {
        let stats = PipelineStats::new();
        stats.record_extract(4, 3, Duration::from_micros(5));
        stats.record_judge(3, Duration::from_micros(2));
        stats.record_solve(
            9,
            17,
            1,
            2,
            true,
            EstimateQuality::Full,
            Duration::from_micros(40),
        );
        stats.record_solve(
            9,
            11,
            0,
            0,
            false,
            EstimateQuality::Region,
            Duration::from_micros(35),
        );
        stats.record_failure(FailureCause::LpInfeasible, Duration::from_micros(1));
        let c = stats.snapshot().counters;
        assert_eq!(c.requests, 3);
        assert_eq!(c.reports_in, 4);
        assert_eq!(c.readings_extracted, 3);
        assert_eq!(c.judgements_formed, 3);
        assert_eq!(c.constraints_generated, 18);
        assert_eq!(c.simplex_iterations, 28);
        assert_eq!(c.warm_start_hits, 1);
        assert_eq!(c.phase1_pivots_saved, 2);
        assert_eq!(c.relaxations_triggered, 1);
        assert_eq!(c.estimate_failures, 1);
        assert_eq!(c.quality_full, 1);
        assert_eq!(c.quality_region, 1);
        assert_eq!(c.quality_centroid, 0);
        assert_eq!(c.cause_lp_infeasible, 1);
    }

    #[test]
    fn cause_counters_cover_every_variant() {
        let stats = PipelineStats::new();
        stats.record_cause(FailureCause::InsufficientJudgements);
        stats.record_cause(FailureCause::LpInfeasible);
        stats.record_cause(FailureCause::LpNumerical);
        stats.record_cause(FailureCause::InvalidInput);
        stats.record_invalid_readings(3);
        let c = stats.snapshot().counters;
        assert_eq!(c.cause_insufficient_judgements, 1);
        assert_eq!(c.cause_lp_infeasible, 1);
        assert_eq!(c.cause_lp_numerical, 1);
        assert_eq!(c.cause_invalid_input, 1);
        assert_eq!(c.invalid_readings, 3);
        // Causes alone are not requests or failures.
        assert_eq!(c.requests, 0);
        assert_eq!(c.estimate_failures, 0);
        let text = stats.snapshot().to_string();
        assert!(text.contains("cause: insufficient judgements"));
        assert!(text.contains("invalid readings      3"));
    }

    #[test]
    fn reset_zeroes_everything() {
        let stats = PipelineStats::new();
        stats.record_extract(4, 3, Duration::from_micros(5));
        stats.record_solve(
            9,
            17,
            1,
            2,
            true,
            EstimateQuality::Centroid,
            Duration::from_micros(40),
        );
        stats.record_failure(FailureCause::InvalidInput, Duration::from_micros(1));
        stats.record_invalid_readings(2);
        stats.reset();
        let s = stats.snapshot();
        assert_eq!(s.counters, CounterTotals::default());
        assert_eq!(s.extract_latency.count(), 0);
        assert_eq!(s.solve_latency.count(), 0);
    }

    #[test]
    fn concurrent_recording_sums_exactly() {
        let stats = PipelineStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        stats.record_solve(
                            5,
                            3,
                            1,
                            1,
                            false,
                            EstimateQuality::Full,
                            Duration::from_nanos(10),
                        );
                    }
                });
            }
        });
        let c = stats.snapshot().counters;
        assert_eq!(c.requests, 8000);
        assert_eq!(c.constraints_generated, 40_000);
        assert_eq!(c.simplex_iterations, 24_000);
        assert_eq!(c.warm_start_hits, 8000);
        assert_eq!(c.phase1_pivots_saved, 8000);
        assert_eq!(c.quality_full, 8000);
    }

    #[test]
    fn size_histogram_quantiles() {
        let h = SizeHistogram::default();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(32);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.total, 90 + 320);
        assert!((s.mean() - 4.1).abs() < 1e-9);
        assert_eq!(s.quantile_upper_bound(0.5), 2);
        assert_eq!(s.quantile_upper_bound(1.0), 64);
        assert_eq!(
            SizeSnapshot {
                buckets: [0; SIZE_BUCKETS],
                total: 0,
            }
            .quantile_upper_bound(0.5),
            0
        );
    }

    #[test]
    fn serving_counters_accumulate_and_reset() {
        let stats = PipelineStats::new();
        stats.record_batch(8);
        stats.record_batch(2);
        stats.record_overload();
        stats.record_deadline_miss();
        stats.note_queue_depth(5);
        stats.note_queue_depth(3); // lower than peak: no effect
        let s = stats.snapshot();
        assert_eq!(s.counters.batches_dispatched, 2);
        assert_eq!(s.counters.queue_rejected, 1);
        assert_eq!(s.counters.deadline_missed, 1);
        assert_eq!(s.counters.queue_depth_peak, 5);
        assert_eq!(s.batch_sizes.count(), 2);
        let text = s.to_string();
        assert!(text.contains("batches dispatched    2"));
        assert!(text.contains("queue depth peak      5"));
        assert!(text.contains("overload rejections   1"));
        assert!(text.contains("deadline misses       1"));
        stats.reset();
        let s = stats.snapshot();
        assert_eq!(s.counters, CounterTotals::default());
        assert_eq!(s.batch_sizes.count(), 0);
    }

    #[test]
    fn dispatch_plane_counters_accumulate_and_reset() {
        let stats = PipelineStats::new();
        stats.record_enqueue_contention();
        stats.record_queue_steal();
        stats.record_queue_steal();
        stats.note_shard_depth(7);
        stats.note_shard_depth(4); // lower than peak: no effect
        let c = stats.snapshot().counters;
        assert_eq!(c.enqueue_contention, 1);
        assert_eq!(c.queue_steals, 2);
        assert_eq!(c.shard_depth_peak, 7);
        let text = stats.snapshot().to_string();
        assert!(text.contains("shard depth peak      7"));
        assert!(text.contains("queue steals          2"));
        assert!(text.contains("enqueue contention    1"));
        stats.reset();
        let s = stats.snapshot();
        assert_eq!(s.counters, CounterTotals::default());
        assert!(!s.to_string().contains("queue steals"));
    }

    #[test]
    fn batch_composition_counters() {
        let stats = PipelineStats::new();
        stats.record_batch_composition(1);
        stats.record_batch_composition(0);
        stats.record_batch_composition(3);
        let c = stats.snapshot().counters;
        assert_eq!(c.batches_homogeneous, 2);
        assert_eq!(c.batches_mixed, 1);
        let text = stats.snapshot().to_string();
        assert!(text.contains("batch venue mix       homogeneous 2 / mixed 1"));
        stats.reset();
        let s = stats.snapshot();
        assert_eq!(s.counters, CounterTotals::default());
        assert!(!s.to_string().contains("batch venue mix"));
    }

    #[test]
    fn reply_encode_counters_accumulate_and_reset() {
        let stats = PipelineStats::new();
        stats.record_reply_encode(100, false);
        stats.record_reply_encode(60, true);
        stats.record_reply_encode(40, true);
        let c = stats.snapshot().counters;
        assert_eq!(c.reply_bytes_encoded, 200);
        assert_eq!(c.reply_bytes_pooled, 100);
        assert_eq!(c.pool_hits, 2);
        assert_eq!(c.pool_misses, 1);
        let text = stats.snapshot().to_string();
        assert!(text.contains("reply bytes encoded   200 (100 pooled, pool hit-rate 66.7%)"));
        stats.reset();
        let c = stats.snapshot().counters;
        assert_eq!(c, CounterTotals::default());
        // No pool activity: the reuse line disappears entirely.
        assert!(!stats.snapshot().to_string().contains("reply bytes"));
    }

    #[test]
    fn display_renders_latency_percentiles() {
        let stats = PipelineStats::new();
        stats.record_solve(
            5,
            7,
            2,
            3,
            false,
            EstimateQuality::Full,
            Duration::from_micros(20),
        );
        let text = stats.snapshot().to_string();
        assert!(text.contains("p50 ≤"));
        assert!(text.contains("p95 ≤"));
        assert!(text.contains("p99 ≤"));
    }

    #[test]
    fn display_renders() {
        let stats = PipelineStats::new();
        stats.record_extract(2, 2, Duration::from_micros(3));
        stats.record_judge(1, Duration::from_micros(1));
        stats.record_solve(
            5,
            7,
            2,
            3,
            false,
            EstimateQuality::Full,
            Duration::from_micros(20),
        );
        let text = stats.snapshot().to_string();
        assert!(text.contains("requests"));
        assert!(text.contains("simplex iterations    7"));
        assert!(text.contains("warm-start hits       2"));
        assert!(text.contains("phase-1 pivots saved  3"));
        assert!(text.contains("solve"));
    }
}
