//! Power-of-direct-path estimation from CSI (§IV-A).
//!
//! The estimator transforms each frequency-domain CSI snapshot into the
//! delay domain (IFFT with interpolating zero-padding) and takes the
//! maximum tap power as the per-packet PDP; a burst of packets is
//! aggregated by the median, which is robust to the occasional noise-blown
//! packet.

use nomloc_dsp::pdp::DelayProfile;
use nomloc_dsp::plan::with_thread_batch_plan;
use nomloc_dsp::{fft, stats, Complex, SoaComplex, Window};
use nomloc_rfsim::CsiSnapshot;

/// Maximum lanes per batched IFFT dispatch.
///
/// Bounds the lane-major working set (`padded_len × lanes × 16 B`) so a
/// chunk stays cache-resident: at the default 256-tap padding, 16 lanes is
/// 64 KiB of split-complex data. The serving workload's 4 APs × 2 packets
/// fit in one chunk; larger crowds just take more dispatches.
const MAX_BATCH_LANES: usize = 16;

/// Configuration of the PDP estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct PdpEstimator {
    /// Minimum delay-domain taps after zero-padding (power-of-two rounded).
    ///
    /// More taps reduce scalloping loss of off-grid delays; 256 keeps the
    /// worst-case peak-power error under ~1 %.
    pub min_taps: usize,
    /// Spectral taper applied to the CSI before the IFFT. Rectangular by
    /// default; Hann/Hamming/Blackman suppress Dirichlet sidelobes at the
    /// cost of delay resolution (see the `repro_ablation_window` study).
    pub window: Window,
}

impl Default for PdpEstimator {
    fn default() -> Self {
        PdpEstimator {
            min_taps: 256,
            window: Window::Rectangular,
        }
    }
}

/// Reusable scratch buffers for PDP extraction.
///
/// Holds every intermediate the estimator needs — the windowed CSI, the
/// delay-domain IFFT output, and the per-packet PDPs of a burst — so that
/// after the first burst of a given shape the `_with` variants below run
/// with zero steady-state allocation. One scratch per thread; the serving
/// path keeps one in a thread-local on each batcher thread.
#[derive(Debug, Default)]
pub struct PdpScratch {
    /// Delay-domain IFFT buffer (see [`DelayProfile::from_csi_with`]).
    ifft: Vec<Complex>,
    /// Windowed CSI ahead of the IFFT.
    tapered: Vec<Complex>,
    /// Per-packet PDPs of the burst currently being aggregated.
    per_packet: Vec<f64>,
    /// Lane-major split-complex buffer for batched IFFT dispatches.
    soa: SoaComplex,
    /// Per-lane peak powers of the batched dispatch in flight.
    lane_peaks: Vec<f64>,
}

impl PdpScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `Some(n)` when `snaps` yields at least two snapshots whose CSI vectors
/// all have the same length `n` — the precondition for lockstep batching.
/// Anything else (zero or one snapshot, or mixed lengths) takes the scalar
/// per-snapshot path.
fn batchable_len<'a>(snaps: impl Iterator<Item = &'a CsiSnapshot>) -> Option<usize> {
    let mut len = None;
    let mut count = 0usize;
    for s in snaps {
        count += 1;
        match len {
            None => len = Some(s.h.len()),
            Some(n) if n == s.h.len() => {}
            _ => return None,
        }
    }
    if count >= 2 {
        len
    } else {
        None
    }
}

impl PdpEstimator {
    /// Creates an estimator with the default padding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the spectral window.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Per-packet PDP: maximum power of the delay profile of one snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot has no subcarriers (cannot happen for grids
    /// built by `SubcarrierGrid`).
    pub fn pdp_of_snapshot(&self, snapshot: &CsiSnapshot) -> f64 {
        self.pdp_of_snapshot_with(snapshot, &mut PdpScratch::new())
    }

    /// [`PdpEstimator::pdp_of_snapshot`] against caller-provided scratch.
    ///
    /// Value-identical to the allocating variant: the taper is bit-identical
    /// ([`Window::apply_into`]) and the peak fold matches
    /// `DelayProfile::peak` including tie-break order.
    pub fn pdp_of_snapshot_with(&self, snapshot: &CsiSnapshot, scratch: &mut PdpScratch) -> f64 {
        let n = snapshot.h.len();
        let bandwidth = snapshot.grid.mean_spacing_hz() * n as f64;
        self.window.apply_into(&snapshot.h, &mut scratch.tapered);
        DelayProfile::peak_power_from_csi_with(
            &scratch.tapered,
            bandwidth,
            self.min_taps,
            &mut scratch.ifft,
        )
    }

    /// Burst PDP: median of per-packet PDPs.
    ///
    /// Returns `None` for an empty burst. Allocates one [`PdpScratch`] per
    /// call; loops over many bursts should use
    /// [`PdpEstimator::pdp_of_burst_with`].
    pub fn pdp_of_burst(&self, burst: &[CsiSnapshot]) -> Option<f64> {
        self.pdp_of_burst_with(burst, &mut PdpScratch::new())
    }

    /// [`PdpEstimator::pdp_of_burst`] against caller-provided scratch:
    /// zero steady-state allocation across bursts. Value-identical to the
    /// allocating variant (`median_in_place` replicates `median` exactly).
    ///
    /// A burst of ≥2 same-length snapshots runs through the batched SoA
    /// kernel — one lockstep IFFT traversal for the whole burst — which is
    /// bit-identical per packet to the scalar path (see
    /// [`DelayProfile::peak_powers_from_batch_with`]); mixed-length bursts
    /// fall back to the per-snapshot kernel.
    pub fn pdp_of_burst_with(
        &self,
        burst: &[CsiSnapshot],
        scratch: &mut PdpScratch,
    ) -> Option<f64> {
        // Detach the per-packet buffer so `scratch` stays borrowable for
        // the per-snapshot calls; reattach before returning.
        let mut per_packet = std::mem::take(&mut scratch.per_packet);
        per_packet.clear();
        if let Some(n) = batchable_len(burst.iter()) {
            let mut it = burst.iter();
            self.batch_peaks(
                burst.len(),
                n,
                || it.next().expect("cursor within burst"),
                scratch,
                &mut per_packet,
            );
        } else {
            per_packet.extend(burst.iter().map(|s| self.pdp_of_snapshot_with(s, scratch)));
        }
        let result = stats::median_in_place(&mut per_packet);
        scratch.per_packet = per_packet;
        result
    }

    /// Burst PDPs of many reports in one pass: `out[i]` is exactly
    /// [`PdpEstimator::pdp_of_burst_with`]`(bursts[i])`.
    ///
    /// When every snapshot across every burst has the same CSI length, the
    /// whole set is flattened into lane-major chunks of up to
    /// [`MAX_BATCH_LANES`] lanes and run through the batched kernel —
    /// cross-report batching fills far more vector lanes than any single
    /// burst (the serving workload has 2-packet bursts but 8+ snapshots per
    /// request). The flat peak sequence is then segmented back per burst
    /// for the median. Mixed-length inputs fall back per burst.
    pub fn pdp_of_bursts_with(
        &self,
        bursts: &[&[CsiSnapshot]],
        scratch: &mut PdpScratch,
        out: &mut Vec<Option<f64>>,
    ) {
        out.clear();
        let total: usize = bursts.iter().map(|b| b.len()).sum();
        let Some(n) = batchable_len(bursts.iter().flat_map(|b| b.iter())) else {
            out.extend(bursts.iter().map(|b| self.pdp_of_burst_with(b, scratch)));
            return;
        };
        let mut flat = std::mem::take(&mut scratch.per_packet);
        flat.clear();
        let (mut bi, mut si) = (0usize, 0usize);
        self.batch_peaks(
            total,
            n,
            || {
                while bursts[bi].len() == si {
                    bi += 1;
                    si = 0;
                }
                let snap = &bursts[bi][si];
                si += 1;
                snap
            },
            scratch,
            &mut flat,
        );
        let mut start = 0;
        for burst in bursts {
            let end = start + burst.len();
            out.push(stats::median_in_place(&mut flat[start..end]));
            start = end;
        }
        scratch.per_packet = flat;
    }

    /// Packs `total` snapshots of CSI length `n` (produced by `next`, in
    /// order) into lane-major chunks and appends one peak power per
    /// snapshot to `out` via the batched kernel.
    ///
    /// Mirrors the scalar path's validation panics per snapshot ("CSI must
    /// not be empty", "bandwidth must be positive") before transforming.
    fn batch_peaks<'a>(
        &self,
        total: usize,
        n: usize,
        mut next: impl FnMut() -> &'a CsiSnapshot,
        scratch: &mut PdpScratch,
        out: &mut Vec<f64>,
    ) {
        let padded = fft::padded_len(n, self.min_taps);
        let mut done = 0usize;
        while done < total {
            let lanes = MAX_BATCH_LANES.min(total - done);
            with_thread_batch_plan(padded, |plan| {
                scratch.soa.reset(padded * lanes);
                for lane in 0..lanes {
                    let snap = next();
                    assert!(!snap.h.is_empty(), "CSI must not be empty");
                    let bandwidth = snap.grid.mean_spacing_hz() * n as f64;
                    assert!(bandwidth > 0.0, "bandwidth must be positive");
                    self.window.apply_into(&snap.h, &mut scratch.tapered);
                    // Scatter each tapered row straight into bit-reversed
                    // positions so the batched inverse can skip its swap
                    // traversal (rows past the CSI length stay zero from
                    // the reset — zeros are permutation-invariant).
                    plan.scatter_lane(&mut scratch.soa, lane, lanes, &scratch.tapered);
                }
                DelayProfile::peak_powers_from_prepermuted_batch_with(
                    plan,
                    &mut scratch.soa,
                    lanes,
                    n,
                    &mut scratch.lane_peaks,
                );
            });
            out.extend_from_slice(&scratch.lane_peaks);
            done += lanes;
        }
    }

    /// Array PDP with selection combining: the maximum per-antenna burst
    /// PDP. Spatially separated elements fade independently, so the best
    /// antenna tracks the true direct-path power more faithfully than any
    /// single element.
    ///
    /// Returns `None` when every antenna's burst is empty.
    pub fn pdp_of_array(&self, bursts_per_antenna: &[Vec<CsiSnapshot>]) -> Option<f64> {
        self.pdp_of_array_with(bursts_per_antenna, &mut PdpScratch::new())
    }

    /// [`PdpEstimator::pdp_of_array`] against caller-provided scratch.
    pub fn pdp_of_array_with(
        &self,
        bursts_per_antenna: &[Vec<CsiSnapshot>],
        scratch: &mut PdpScratch,
    ) -> Option<f64> {
        bursts_per_antenna
            .iter()
            .filter_map(|burst| self.pdp_of_burst_with(burst, scratch))
            .reduce(f64::max)
    }

    /// The full delay profile of a snapshot (Fig. 3 of the paper).
    pub fn delay_profile(&self, snapshot: &CsiSnapshot) -> DelayProfile {
        self.delay_profile_with(snapshot, &mut PdpScratch::new())
    }

    /// [`PdpEstimator::delay_profile`] against caller-provided scratch
    /// (see [`DelayProfile::from_csi_with`]). Bit-identical to the
    /// allocating variant.
    pub fn delay_profile_with(
        &self,
        snapshot: &CsiSnapshot,
        scratch: &mut PdpScratch,
    ) -> DelayProfile {
        let n = snapshot.h.len();
        // Treat the (possibly grouped) grid as uniform at its mean spacing;
        // the effective bandwidth spans n such steps.
        let bandwidth = snapshot.grid.mean_spacing_hz() * n as f64;
        self.window.apply_into(&snapshot.h, &mut scratch.tapered);
        DelayProfile::from_csi_with(
            &scratch.tapered,
            bandwidth,
            self.min_taps,
            &mut scratch.ifft,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomloc_geometry::{Point, Polygon, Segment};
    use nomloc_rfsim::{Environment, FloorPlan, Material, RadioConfig, SubcarrierGrid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn open_env() -> Environment {
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(20.0, 12.0),
        ))
        .build();
        Environment::new(plan, RadioConfig::default())
    }

    fn walled_env() -> Environment {
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(20.0, 12.0),
        ))
        .wall(
            Segment::new(Point::new(10.0, 0.0), Point::new(10.0, 12.0)),
            Material::CONCRETE,
        )
        .build();
        Environment::new(plan, RadioConfig::default())
    }

    #[test]
    fn pdp_decreases_with_distance() {
        let env = open_env();
        let est = PdpEstimator::new();
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(1);
        let tx = Point::new(1.0, 6.0);
        let near = env.sample_csi_burst(tx, Point::new(4.0, 6.0), &grid, 25, &mut rng);
        let far = env.sample_csi_burst(tx, Point::new(18.0, 6.0), &grid, 25, &mut rng);
        let p_near = est.pdp_of_burst(&near).unwrap();
        let p_far = est.pdp_of_burst(&far).unwrap();
        assert!(
            p_near > p_far,
            "near PDP {p_near} must exceed far PDP {p_far}"
        );
    }

    #[test]
    fn pdp_ordering_matches_proximity_in_los() {
        // The core assumption of the method: PDP ordering ↔ distance
        // ordering under LOS. Check across many site pairs.
        let env = open_env();
        let est = PdpEstimator::new();
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(2);
        // Asymmetric object position: every AP pair has a clear distance
        // winner (equidistant pairs are coin flips by design — that is the
        // paper's own low-accuracy case in Fig. 7).
        let obj = Point::new(5.0, 4.0);
        let aps = [
            Point::new(2.0, 2.0),
            Point::new(18.0, 2.0),
            Point::new(18.0, 10.0),
            Point::new(2.0, 10.0),
        ];
        let pdps: Vec<f64> = aps
            .iter()
            .map(|&ap| {
                let burst = env.sample_csi_burst(obj, ap, &grid, 30, &mut rng);
                est.pdp_of_burst(&burst).unwrap()
            })
            .collect();
        let mut correct = 0;
        let mut total = 0;
        for i in 0..aps.len() {
            for j in (i + 1)..aps.len() {
                total += 1;
                let closer_i = obj.distance(aps[i]) < obj.distance(aps[j]);
                let stronger_i = pdps[i] > pdps[j];
                if closer_i == stronger_i {
                    correct += 1;
                }
            }
        }
        assert!(correct >= total - 1, "only {correct}/{total} pairs ordered");
    }

    #[test]
    fn nlos_suppresses_pdp() {
        // Same geometric distance, but a concrete wall between: PDP drops
        // sharply (the Fig. 3 dichotomy).
        let est = PdpEstimator::new();
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(3);
        let tx = Point::new(7.0, 6.0);
        let rx = Point::new(13.0, 6.0);
        let los = open_env().sample_csi_burst(tx, rx, &grid, 25, &mut rng);
        let nlos = walled_env().sample_csi_burst(tx, rx, &grid, 25, &mut rng);
        let p_los = est.pdp_of_burst(&los).unwrap();
        let p_nlos = est.pdp_of_burst(&nlos).unwrap();
        // The wall costs 13 dB on every path, but at 20 MHz all indoor
        // paths merge into one delay lobe whose coherent sum fluctuates a
        // few dB either way — so require a clear gap, not the full 13 dB.
        let gap_db = 10.0 * (p_los / p_nlos).log10();
        assert!(gap_db > 3.0, "NLOS gap only {gap_db:.1} dB");
    }

    #[test]
    fn burst_median_is_stable() {
        // Two independent bursts from the same link agree within a couple
        // of dB.
        let env = open_env();
        let est = PdpEstimator::new();
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(4);
        let tx = Point::new(3.0, 3.0);
        let rx = Point::new(15.0, 9.0);
        let a = est
            .pdp_of_burst(&env.sample_csi_burst(tx, rx, &grid, 40, &mut rng))
            .unwrap();
        let b = est
            .pdp_of_burst(&env.sample_csi_burst(tx, rx, &grid, 40, &mut rng))
            .unwrap();
        let diff_db = (10.0 * (a / b).log10()).abs();
        assert!(diff_db < 2.0, "burst-to-burst variation {diff_db:.2} dB");
    }

    #[test]
    fn empty_burst_is_none() {
        assert_eq!(PdpEstimator::new().pdp_of_burst(&[]), None);
        assert_eq!(
            PdpEstimator::new().pdp_of_burst_with(&[], &mut PdpScratch::new()),
            None
        );
    }

    #[test]
    fn scratch_variants_match_allocating() {
        // One scratch reused across snapshots, bursts, and arrays of
        // different shapes — every result must equal the allocating call
        // exactly.
        let env = open_env();
        let est = PdpEstimator::new().with_window(Window::Hann);
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(11);
        let mut scratch = PdpScratch::new();
        let tx = Point::new(2.0, 3.0);
        for (i, n_packets) in [(0usize, 3usize), (1, 7), (2, 1), (3, 4)] {
            let rx = Point::new(4.0 + 3.0 * i as f64, 6.0);
            let burst = env.sample_csi_burst(tx, rx, &grid, n_packets, &mut rng);
            assert_eq!(
                est.pdp_of_snapshot_with(&burst[0], &mut scratch),
                est.pdp_of_snapshot(&burst[0]),
                "snapshot {i}"
            );
            assert_eq!(
                est.pdp_of_burst_with(&burst, &mut scratch),
                est.pdp_of_burst(&burst),
                "burst {i}"
            );
            let array = vec![burst.clone(), Vec::new(), burst];
            assert_eq!(
                est.pdp_of_array_with(&array, &mut scratch),
                est.pdp_of_array(&array),
                "array {i}"
            );
        }
    }

    #[test]
    fn batched_burst_matches_per_snapshot_oracle() {
        // pdp_of_burst_with batches uniform bursts; the per-snapshot path
        // (still exercised via pdp_of_snapshot_with) is the oracle. Every
        // window, because the taper is applied before lane packing.
        let env = open_env();
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(21);
        for window in [Window::Rectangular, Window::Hann, Window::Blackman] {
            let est = PdpEstimator::new().with_window(window);
            let mut scratch = PdpScratch::new();
            for n_packets in [2usize, 3, 16, 17, 33] {
                let burst = env.sample_csi_burst(
                    Point::new(2.0, 3.0),
                    Point::new(14.0, 8.0),
                    &grid,
                    n_packets,
                    &mut rng,
                );
                let batched = est.pdp_of_burst_with(&burst, &mut scratch);
                let mut oracle_scratch = PdpScratch::new();
                let mut peaks: Vec<f64> = burst
                    .iter()
                    .map(|s| est.pdp_of_snapshot_with(s, &mut oracle_scratch))
                    .collect();
                let oracle = stats::median_in_place(&mut peaks);
                assert_eq!(batched, oracle, "{window:?} n_packets={n_packets}");
            }
        }
    }

    #[test]
    fn bursts_batch_matches_per_burst_oracle() {
        let env = open_env();
        let est = PdpEstimator::new();
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(22);
        let tx = Point::new(3.0, 4.0);
        // 4 reports × 2 packets (the serving shape), plus an empty burst
        // and a single-packet burst in the middle.
        let bursts_owned: Vec<Vec<CsiSnapshot>> = [2usize, 2, 0, 1, 2, 2]
            .iter()
            .enumerate()
            .map(|(i, &np)| {
                env.sample_csi_burst(
                    tx,
                    Point::new(4.0 + 2.0 * i as f64, 6.0),
                    &grid,
                    np,
                    &mut rng,
                )
            })
            .collect();
        let bursts: Vec<&[CsiSnapshot]> = bursts_owned.iter().map(|b| b.as_slice()).collect();
        let mut scratch = PdpScratch::new();
        let mut batched = Vec::new();
        est.pdp_of_bursts_with(&bursts, &mut scratch, &mut batched);
        let oracle: Vec<Option<f64>> = bursts_owned.iter().map(|b| est.pdp_of_burst(b)).collect();
        assert_eq!(batched, oracle);
    }

    #[test]
    fn mixed_length_bursts_fall_back_identically() {
        // Snapshots of different CSI lengths cannot share a lockstep batch;
        // the fallback must still equal the allocating per-burst path.
        let env = open_env();
        let est = PdpEstimator::new();
        let mut rng = StdRng::seed_from_u64(23);
        let tx = Point::new(2.0, 2.0);
        let a = env.sample_csi_burst(
            tx,
            Point::new(8.0, 6.0),
            &SubcarrierGrid::intel5300(),
            2,
            &mut rng,
        );
        let b = env.sample_csi_burst(
            tx,
            Point::new(12.0, 6.0),
            &SubcarrierGrid::full_80211n_20mhz(),
            3,
            &mut rng,
        );
        // Mixed across reports → per-burst fallback (each burst itself
        // uniform, so still batched internally).
        let bursts: Vec<&[CsiSnapshot]> = vec![&a, &b];
        let mut scratch = PdpScratch::new();
        let mut got = Vec::new();
        est.pdp_of_bursts_with(&bursts, &mut scratch, &mut got);
        assert_eq!(got, vec![est.pdp_of_burst(&a), est.pdp_of_burst(&b)]);
        // Mixed within one burst → per-snapshot fallback.
        let mut mixed = a.clone();
        mixed.extend(b.iter().cloned());
        let batched = est.pdp_of_burst_with(&mixed, &mut scratch);
        assert_eq!(batched, est.pdp_of_burst(&mixed));
    }

    #[test]
    fn delay_profile_peak_matches_pdp() {
        let env = open_env();
        let est = PdpEstimator::new();
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(5);
        let snap = env.sample_csi(Point::new(2.0, 2.0), Point::new(10.0, 8.0), &grid, &mut rng);
        let profile = est.delay_profile(&snap);
        assert_eq!(profile.peak().power, est.pdp_of_snapshot(&snap));
    }

    #[test]
    fn delay_profile_peak_near_true_delay() {
        let env = open_env();
        let est = PdpEstimator::new();
        // Dense grid and quiet radio for a precise check.
        let grid = SubcarrierGrid::full_80211n_20mhz();
        let config = RadioConfig {
            noise_floor_dbm: -150.0,
            sto_max_s: 0.0,
            ..RadioConfig::default()
        };
        let tx = Point::new(1.0, 6.0);
        let rx = Point::new(16.0, 6.0); // 15 m ⇒ 50 ns
        let trace = env.trace(tx, rx);
        let mut rng = StdRng::seed_from_u64(6);
        let snap = trace.sample_csi(&config, &grid, &mut rng);
        let profile = est.delay_profile(&snap);
        let peak_delay = profile.peak().delay;
        let true_delay = 15.0 / 299_792_458.0;
        assert!(
            (peak_delay - true_delay).abs() < 3.0 * profile.tap_spacing(),
            "peak at {peak_delay:.2e}s, true {true_delay:.2e}s"
        );
    }
}
