//! Sequential tracking of a moving object.
//!
//! NomLoc localizes one snapshot at a time; real ILBS applications (the
//! paper's advertising and patrol scenarios) follow a *moving* person, so
//! consecutive estimates carry exploitable temporal structure. This module
//! adds the post-processing layer a deployment would run on the server:
//! smoothing filters over the per-round [`crate::LocationEstimate`]s, plus
//! a physical-speed gate that rejects impossible jumps.

use nomloc_geometry::{Point, Vec2};

/// Smoothing strategy applied to the estimate stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Smoothing {
    /// Pass estimates through unchanged.
    Raw,
    /// Exponential smoothing with factor `alpha ∈ (0, 1]` (1 = raw).
    Exponential {
        /// Weight of the newest estimate.
        alpha: f64,
    },
    /// Alpha-beta filter tracking position and velocity.
    AlphaBeta {
        /// Position-correction gain, `(0, 1]`.
        alpha: f64,
        /// Velocity-correction gain, `(0, 1]`.
        beta: f64,
    },
}

/// A tracker consuming per-round location estimates.
///
/// # Example
///
/// ```
/// use nomloc_core::tracking::{Smoothing, Tracker};
/// use nomloc_geometry::Point;
///
/// let mut tracker = Tracker::new(Smoothing::Exponential { alpha: 0.5 });
/// tracker.push(Point::new(0.0, 0.0), 1.0);
/// let smoothed = tracker.push(Point::new(2.0, 0.0), 1.0);
/// assert!((smoothed.x - 1.0).abs() < 1e-12); // halfway toward the jump
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tracker {
    smoothing: Smoothing,
    max_speed: Option<f64>,
    position: Option<Point>,
    velocity: Vec2,
    raw_history: Vec<Point>,
    smooth_history: Vec<Point>,
    rejected: u64,
}

impl Tracker {
    /// Creates a tracker with the given smoothing.
    ///
    /// # Panics
    ///
    /// Panics when a gain parameter lies outside `(0, 1]`.
    pub fn new(smoothing: Smoothing) -> Self {
        match smoothing {
            Smoothing::Raw => {}
            Smoothing::Exponential { alpha } => {
                assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
            }
            Smoothing::AlphaBeta { alpha, beta } => {
                assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
                assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
            }
        }
        Tracker {
            smoothing,
            max_speed: None,
            position: None,
            velocity: Vec2::ZERO,
            raw_history: Vec::new(),
            smooth_history: Vec::new(),
            rejected: 0,
        }
    }

    /// Gates raw estimates to a maximum physical speed (m/s): a new
    /// estimate implying a faster jump is pulled back onto the speed
    /// circle before smoothing. Walking pace is ~1.4 m/s.
    ///
    /// # Panics
    ///
    /// Panics when `max_speed` is not strictly positive.
    pub fn with_max_speed(mut self, max_speed: f64) -> Self {
        assert!(max_speed > 0.0, "max speed must be positive");
        self.max_speed = Some(max_speed);
        self
    }

    /// Feeds the next raw estimate taken `dt` seconds after the previous
    /// one and returns the smoothed position.
    ///
    /// Invalid inputs — a non-finite position, or a `dt` that is zero,
    /// negative, or non-finite (a delayed-frame replay can produce dt = 0;
    /// dividing the alpha-beta gain by it would poison the velocity with
    /// NaN) — are rejected without touching the tracker state: the prior
    /// smoothed position (or the origin when no estimate has ever been
    /// accepted) is returned and [`Tracker::rejected`] is incremented.
    pub fn push(&mut self, raw: Point, dt: f64) -> Point {
        if !dt.is_finite() || dt <= 0.0 || !raw.x.is_finite() || !raw.y.is_finite() {
            self.rejected += 1;
            return self.position.unwrap_or(Point::ORIGIN);
        }
        self.raw_history.push(raw);

        let gated = match (self.position, self.max_speed) {
            (Some(prev), Some(vmax)) => {
                let step = raw - prev;
                let limit = vmax * dt;
                if step.norm() > limit {
                    prev + step.normalized().expect("non-zero step") * limit
                } else {
                    raw
                }
            }
            _ => raw,
        };

        let smoothed = match (self.smoothing, self.position) {
            (_, None) => gated,
            (Smoothing::Raw, Some(_)) => gated,
            (Smoothing::Exponential { alpha }, Some(prev)) => prev.lerp(gated, alpha),
            (Smoothing::AlphaBeta { alpha, beta }, Some(prev)) => {
                let predicted = prev + self.velocity * dt;
                let residual = gated - predicted;
                self.velocity += residual * (beta / dt);
                predicted + residual * alpha
            }
        };
        self.position = Some(smoothed);
        self.smooth_history.push(smoothed);
        smoothed
    }

    /// The latest smoothed position, if any estimate has been fed.
    pub fn position(&self) -> Option<Point> {
        self.position
    }

    /// Current velocity estimate (only meaningful for alpha-beta).
    pub fn velocity(&self) -> Vec2 {
        self.velocity
    }

    /// Number of estimates rejected at the [`Tracker::push`] input guard
    /// (non-finite position or invalid time step).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Motion-model extrapolation `dt` seconds past the latest smoothed
    /// position; `None` until an estimate has been accepted. The speed
    /// gate also caps the extrapolated step, so a corrupted velocity
    /// cannot predict a physically impossible jump.
    pub fn predict(&self, dt: f64) -> Option<Point> {
        let prev = self.position?;
        if !dt.is_finite() || dt < 0.0 {
            return Some(prev);
        }
        let mut step = self.velocity * dt;
        if let Some(vmax) = self.max_speed {
            let limit = vmax * dt;
            if step.norm() > limit {
                match step.normalized() {
                    Some(dir) => step = dir * limit,
                    None => step = Vec2::ZERO,
                }
            }
        }
        Some(prev + step)
    }

    /// Raw estimates fed so far.
    pub fn raw_history(&self) -> &[Point] {
        &self.raw_history
    }

    /// Smoothed outputs so far (same length as the raw history).
    pub fn smooth_history(&self) -> &[Point] {
        &self.smooth_history
    }

    /// Total smoothed path length, metres.
    pub fn path_length(&self) -> f64 {
        self.smooth_history
            .windows(2)
            .map(|w| w[0].distance(w[1]))
            .sum()
    }

    /// Drops all but the newest `keep` history entries. The filter state
    /// (position, velocity, rejection count) is untouched, so smoothing
    /// continues bit-identically; only the windows returned by
    /// [`Tracker::raw_history`] / [`Tracker::smooth_history`] (and hence
    /// [`Tracker::path_length`]) shrink. Long-lived server sessions call
    /// this to bound per-session memory.
    pub fn shrink_history(&mut self, keep: usize) {
        if self.raw_history.len() > keep {
            self.raw_history.drain(..self.raw_history.len() - keep);
        }
        if self.smooth_history.len() > keep {
            self.smooth_history
                .drain(..self.smooth_history.len() - keep);
        }
    }

    /// Clears history and state, keeping the configuration.
    pub fn reset(&mut self) {
        self.position = None;
        self.velocity = Vec2::ZERO;
        self.raw_history.clear();
        self.smooth_history.clear();
        self.rejected = 0;
    }
}

/// Mean error of a track against ground truth (pairs positions by index).
///
/// Returns `None` when the lengths differ or the track is empty.
pub fn track_error(track: &[Point], truth: &[Point]) -> Option<f64> {
    if track.is_empty() || track.len() != truth.len() {
        return None;
    }
    Some(
        track
            .iter()
            .zip(truth)
            .map(|(a, b)| a.distance(*b))
            .sum::<f64>()
            / track.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noisy stationary target: deterministic ± zig noise.
    fn noisy_stationary(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let s = if i % 2 == 0 { 1.0 } else { -1.0 };
                Point::new(5.0 + s * 0.8, 5.0 - s * 0.6)
            })
            .collect()
    }

    #[test]
    fn raw_mode_passes_through() {
        let mut t = Tracker::new(Smoothing::Raw);
        for p in noisy_stationary(6) {
            let out = t.push(p, 1.0);
            assert_eq!(out, p);
        }
        assert_eq!(t.raw_history().len(), 6);
        assert_eq!(t.smooth_history(), t.raw_history());
    }

    #[test]
    fn exponential_reduces_jitter() {
        let raw = noisy_stationary(40);
        let mut t = Tracker::new(Smoothing::Exponential { alpha: 0.3 });
        for &p in &raw {
            t.push(p, 1.0);
        }
        let truth = vec![Point::new(5.0, 5.0); 40];
        let raw_err = track_error(&raw, &truth).unwrap();
        // Ignore the warm-up samples when scoring the smoothed track.
        let smoothed = &t.smooth_history()[10..];
        let smooth_err = track_error(smoothed, &truth[10..]).unwrap();
        assert!(
            smooth_err < raw_err * 0.6,
            "smoothing didn't help: {smooth_err} vs {raw_err}"
        );
    }

    #[test]
    fn alpha_beta_tracks_linear_motion() {
        // Target moves at 1 m/s along x; noiseless estimates.
        let mut t = Tracker::new(Smoothing::AlphaBeta {
            alpha: 0.85,
            beta: 0.5,
        });
        let mut final_pos = Point::ORIGIN;
        for i in 0..30 {
            final_pos = t.push(Point::new(i as f64, 0.0), 1.0);
        }
        assert!(final_pos.distance(Point::new(29.0, 0.0)) < 0.5);
        // Velocity estimate converges to 1 m/s east.
        assert!(
            (t.velocity().x - 1.0).abs() < 0.2,
            "vx = {}",
            t.velocity().x
        );
        assert!(t.velocity().y.abs() < 0.1);
    }

    #[test]
    fn speed_gate_rejects_teleports() {
        let mut t = Tracker::new(Smoothing::Raw).with_max_speed(1.5);
        t.push(Point::new(0.0, 0.0), 1.0);
        // A 10 m jump in 1 s is impossible at 1.5 m/s.
        let out = t.push(Point::new(10.0, 0.0), 1.0);
        assert!((out.x - 1.5).abs() < 1e-9, "gated to {out}");
        // A legal step passes through.
        let out = t.push(Point::new(2.0, 0.0), 1.0);
        assert!((out.x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn path_length_accumulates() {
        let mut t = Tracker::new(Smoothing::Raw);
        t.push(Point::new(0.0, 0.0), 1.0);
        t.push(Point::new(3.0, 4.0), 1.0);
        t.push(Point::new(3.0, 4.0), 1.0);
        assert!((t.path_length() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut t = Tracker::new(Smoothing::Exponential { alpha: 0.5 });
        t.push(Point::new(1.0, 1.0), 1.0);
        t.reset();
        assert!(t.position().is_none());
        assert!(t.raw_history().is_empty());
        // First estimate after reset is taken as-is.
        let out = t.push(Point::new(9.0, 9.0), 1.0);
        assert_eq!(out, Point::new(9.0, 9.0));
    }

    #[test]
    fn track_error_checks_lengths() {
        assert!(track_error(&[], &[]).is_none());
        assert!(track_error(&[Point::ORIGIN], &[]).is_none());
        let e = track_error(&[Point::new(0.0, 0.0)], &[Point::new(3.0, 4.0)]).unwrap();
        assert!((e - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn rejects_bad_alpha() {
        let _ = Tracker::new(Smoothing::Exponential { alpha: 0.0 });
    }

    #[test]
    fn rejects_zero_dt_without_panicking() {
        let mut t = Tracker::new(Smoothing::Raw);
        // With no accepted estimate yet, a rejected push answers the
        // origin and leaves the tracker pristine.
        assert_eq!(t.push(Point::new(3.0, 3.0), 0.0), Point::ORIGIN);
        assert_eq!(t.rejected(), 1);
        assert!(t.position().is_none());
        assert!(t.raw_history().is_empty());
        // After real history, rejected pushes answer the prior smoothed
        // point and the state is untouched.
        t.push(Point::new(1.0, 2.0), 1.0);
        for (raw, dt) in [
            (Point::new(5.0, 5.0), 0.0),
            (Point::new(5.0, 5.0), -1.0),
            (Point::new(5.0, 5.0), f64::NAN),
            (Point::new(5.0, 5.0), f64::INFINITY),
            (Point::new(f64::NAN, 5.0), 1.0),
            (Point::new(5.0, f64::INFINITY), 1.0),
        ] {
            assert_eq!(t.push(raw, dt), Point::new(1.0, 2.0), "raw {raw} dt {dt}");
        }
        assert_eq!(t.rejected(), 7);
        assert_eq!(t.raw_history().len(), 1);
        assert_eq!(t.smooth_history().len(), 1);
        assert_eq!(t.position(), Some(Point::new(1.0, 2.0)));
    }

    #[test]
    fn rejections_never_poison_the_velocity() {
        let mut t = Tracker::new(Smoothing::AlphaBeta {
            alpha: 0.85,
            beta: 0.5,
        });
        for i in 0..10 {
            t.push(Point::new(i as f64, 0.0), 1.0);
        }
        let v = t.velocity();
        // A dt=0 replay of the last frame must not divide beta by zero.
        t.push(Point::new(9.0, 0.0), 0.0);
        assert_eq!(t.velocity(), v);
        assert!(t.velocity().x.is_finite());
    }

    #[test]
    fn speed_gate_admits_steps_at_exactly_max_speed() {
        let mut t = Tracker::new(Smoothing::Raw).with_max_speed(1.5);
        t.push(Point::new(0.0, 0.0), 1.0);
        // norm == limit is legal: the gate clamps only strictly faster steps.
        let out = t.push(Point::new(1.5, 0.0), 1.0);
        assert_eq!(out, Point::new(1.5, 0.0));
        // ... and the limit scales with dt.
        let out = t.push(Point::new(4.5, 0.0), 2.0);
        assert_eq!(out, Point::new(4.5, 0.0));
    }

    #[test]
    fn reset_mid_stream_forgets_the_old_trajectory() {
        let mut t = Tracker::new(Smoothing::AlphaBeta {
            alpha: 0.85,
            beta: 0.5,
        })
        .with_max_speed(100.0);
        for i in 0..20 {
            t.push(Point::new(i as f64, 0.0), 1.0);
        }
        assert!(t.velocity().x > 0.5);
        t.reset();
        assert_eq!(t.velocity(), Vec2::ZERO);
        assert_eq!(t.rejected(), 0);
        assert!(t.predict(1.0).is_none());
        // The first post-reset estimate is taken as-is even though it is
        // far from the pre-reset track.
        let out = t.push(Point::new(500.0, 500.0), 1.0);
        assert_eq!(out, Point::new(500.0, 500.0));
        assert_eq!(t.smooth_history().len(), 1);
    }

    #[test]
    fn single_point_history_predicts_in_place() {
        let mut t = Tracker::new(Smoothing::AlphaBeta {
            alpha: 0.85,
            beta: 0.5,
        });
        assert!(t.predict(1.0).is_none());
        t.push(Point::new(2.0, 3.0), 1.0);
        // One sample ⇒ zero velocity ⇒ the prediction stays put.
        assert_eq!(t.predict(5.0), Some(Point::new(2.0, 3.0)));
        assert!((t.path_length()).abs() < 1e-12);
    }

    #[test]
    fn predict_extrapolates_and_respects_the_speed_gate() {
        let mut t = Tracker::new(Smoothing::AlphaBeta {
            alpha: 0.85,
            beta: 0.5,
        })
        .with_max_speed(2.0);
        for i in 0..30 {
            t.push(Point::new(i as f64, 0.0), 1.0);
        }
        let pos = t.position().unwrap();
        let ahead = t.predict(1.0).unwrap();
        assert!(ahead.x > pos.x, "prediction continues the motion");
        // The extrapolated step obeys the same physical speed cap.
        assert!(ahead.distance(pos) <= 2.0 + 1e-9);
        // Invalid horizons fall back to the current position.
        assert_eq!(t.predict(f64::NAN), Some(pos));
        assert_eq!(t.predict(-1.0), Some(pos));
    }

    #[test]
    fn shrink_history_bounds_memory_without_touching_the_filter() {
        let mut a = Tracker::new(Smoothing::AlphaBeta {
            alpha: 0.85,
            beta: 0.5,
        });
        let mut b = a.clone();
        for i in 0..100 {
            let p = Point::new(i as f64, (i % 3) as f64);
            a.push(p, 1.0);
            b.push(p, 1.0);
            b.shrink_history(4);
        }
        assert_eq!(b.raw_history().len(), 4);
        assert_eq!(b.smooth_history().len(), 4);
        // The filter itself never diverges from the unshrunk twin.
        assert_eq!(a.position(), b.position());
        assert_eq!(a.velocity(), b.velocity());
        assert_eq!(a.predict(1.0), b.predict(1.0));
        assert_eq!(
            &a.smooth_history()[96..],
            b.smooth_history(),
            "the retained window is the newest entries"
        );
    }

    #[test]
    fn track_error_on_mismatched_lengths_is_none() {
        let a = [Point::ORIGIN, Point::new(1.0, 0.0)];
        let b = [Point::ORIGIN];
        assert!(track_error(&a, &b).is_none());
        assert!(track_error(&b, &a).is_none());
        assert!(track_error(&[], &a).is_none());
        let e = track_error(&a, &a).unwrap();
        assert_eq!(e, 0.0);
    }
}
