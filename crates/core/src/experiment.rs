//! Measurement campaigns: the simulation loop behind every figure.
//!
//! A [`Campaign`] places the object at each test site of a [`Venue`],
//! simulates the probe/measurement exchange under a chosen [`Deployment`],
//! runs the full NomLoc pipeline, and records localization errors and
//! proximity-judgement accuracy. The `repro_*` binaries, the examples, and
//! the integration tests are all thin wrappers over this module.

use crate::confidence::{Confidence, PaperExp};
use crate::metrics::{self, SiteOutcome};
use crate::proximity::{judgement_accuracy, ApSite, PdpReading};
use crate::scenario::Venue;
use crate::server::LocalizationServer;
use nomloc_dsp::stats::Ecdf;
use nomloc_dsp::Window;
use nomloc_geometry::Point;
use nomloc_lp::center::CenterMethod;
use nomloc_mobility::{patterns, MarkovChain, PositionError};
use nomloc_rfsim::{AntennaArray, Environment, SubcarrierGrid};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// AP deployment strategy under evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Deployment {
    /// All APs fixed (the paper's baseline): the nomadic AP parks at home.
    Static,
    /// AP 1 random-walks over {home, P1…} taking measurements from each
    /// distinct site it visits.
    Nomadic {
        /// Number of Markov-chain transitions per localization round.
        steps: usize,
        /// Transition matrix family over the nomadic site set.
        pattern: MobilityPattern,
    },
    /// Multiple nomadic APs (the paper's §VI future-work extension): the
    /// first `nomads` APs each walk over their own home plus the venue's
    /// shared nomadic sites; the rest stay fixed.
    Fleet {
        /// How many APs are nomadic (0 degenerates to `Static`; 1 matches
        /// `Nomadic` up to RNG draws). Clamped to the AP count.
        nomads: usize,
        /// Markov-chain transitions per nomadic AP per round.
        steps: usize,
    },
}

/// Named transition-matrix families (see [`nomloc_mobility::patterns`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityPattern {
    /// Uniform random walk (the paper's model).
    Uniform,
    /// Linger at each site (`stay` probability 0.5).
    StayBiased,
    /// Deterministic patrol cycle.
    Sweep,
    /// Pace between neighbouring sites.
    Corridor,
}

impl MobilityPattern {
    /// Builds the transition matrix for `n` sites.
    pub fn matrix(&self, n: usize) -> Vec<Vec<f64>> {
        match self {
            MobilityPattern::Uniform => patterns::uniform(n),
            MobilityPattern::StayBiased => patterns::stay_biased(n, 0.5),
            MobilityPattern::Sweep => patterns::sweep(n),
            MobilityPattern::Corridor => patterns::corridor(n),
        }
    }
}

impl Deployment {
    /// Nomadic deployment with the paper's uniform random walk.
    pub fn nomadic(steps: usize) -> Deployment {
        Deployment::Nomadic {
            steps,
            pattern: MobilityPattern::Uniform,
        }
    }
}

/// A configured measurement campaign. Build with [`Campaign::new`] and the
/// chained setters, then call [`Campaign::run`].
#[derive(Debug, Clone)]
pub struct Campaign {
    venue: Venue,
    deployment: Deployment,
    packets_per_site: usize,
    trials_per_site: usize,
    position_error: f64,
    center_method: CenterMethod,
    pdp_window: Window,
    rx_antennas: usize,
    carrier_blocking: bool,
    grid: SubcarrierGrid,
    parallel: bool,
    seed: u64,
}

/// Results of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Venue name the campaign ran in.
    pub venue_name: &'static str,
    /// Per-site localization outcomes, in test-site order.
    pub outcomes: Vec<SiteOutcome>,
    /// Per-site PDP proximity-determination accuracy (Fig. 7 metric),
    /// averaged over trials, in test-site order.
    pub proximity_accuracy: Vec<f64>,
}

impl CampaignResult {
    /// Spatial localizability variance (Eq. 22).
    pub fn slv(&self) -> f64 {
        metrics::slv(&self.outcomes).unwrap_or(f64::NAN)
    }

    /// Mean localization error across sites, metres.
    pub fn mean_error(&self) -> f64 {
        metrics::mean_error(&self.outcomes).unwrap_or(f64::NAN)
    }

    /// Error CDF over per-site mean errors.
    ///
    /// # Panics
    ///
    /// Panics when the campaign produced no outcomes (cannot happen for
    /// venues with test sites).
    pub fn error_cdf(&self) -> Ecdf {
        metrics::error_cdf(&self.outcomes).expect("campaign produced outcomes")
    }

    /// Per-site mean errors, in test-site order.
    pub fn site_mean_errors(&self) -> Vec<f64> {
        metrics::site_mean_errors(&self.outcomes)
    }

    /// Mean proximity accuracy across sites.
    pub fn mean_proximity_accuracy(&self) -> f64 {
        if self.proximity_accuracy.is_empty() {
            f64::NAN
        } else {
            self.proximity_accuracy.iter().sum::<f64>() / self.proximity_accuracy.len() as f64
        }
    }
}

impl Campaign {
    /// Creates a campaign with the paper's defaults: 50 packets per site,
    /// 5 trials per site, exact nomadic coordinates (ER = 0), Chebyshev
    /// centers, seed 0.
    pub fn new(venue: Venue, deployment: Deployment) -> Self {
        Campaign {
            venue,
            deployment,
            packets_per_site: 50,
            trials_per_site: 5,
            position_error: 0.0,
            center_method: CenterMethod::Chebyshev,
            pdp_window: Window::Rectangular,
            rx_antennas: 1,
            carrier_blocking: false,
            grid: SubcarrierGrid::intel5300(),
            parallel: true,
            seed: 0,
        }
    }

    /// Sets the number of probe packets measured per AP site.
    pub fn packets_per_site(mut self, n: usize) -> Self {
        self.packets_per_site = n.max(1);
        self
    }

    /// Sets the number of independent localization trials per test site.
    pub fn trials_per_site(mut self, n: usize) -> Self {
        self.trials_per_site = n.max(1);
        self
    }

    /// Sets the nomadic-AP position error range (the paper's ER), metres.
    pub fn position_error(mut self, er: f64) -> Self {
        self.position_error = er.max(0.0);
        self
    }

    /// Sets the center method of the SP estimator.
    pub fn center_method(mut self, method: CenterMethod) -> Self {
        self.center_method = method;
        self
    }

    /// Sets the spectral window of the PDP estimator.
    pub fn pdp_window(mut self, window: Window) -> Self {
        self.pdp_window = window;
        self
    }

    /// Sets the number of λ/2-spaced receive antennas per AP (selection
    /// combining across elements; the paper's Intel 5300 has three).
    pub fn rx_antennas(mut self, n: usize) -> Self {
        self.rx_antennas = n.max(1);
        self
    }

    /// Sets the CSI subcarrier grid (default: the Intel 5300's 30 grouped
    /// subcarriers over 20 MHz).
    pub fn subcarrier_grid(mut self, grid: SubcarrierGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Models the person carrying each nomadic AP as a human-body obstacle
    /// standing 0.3 m behind the AP (away from the venue center), shadowing
    /// the links that pass through them.
    pub fn carrier_blocking(mut self, enabled: bool) -> Self {
        self.carrier_blocking = enabled;
        self
    }

    /// Enables or disables the per-site thread fan-out (on by default;
    /// results are bit-identical either way thanks to per-(site, trial)
    /// RNG derivation).
    pub fn parallel(mut self, enabled: bool) -> Self {
        self.parallel = enabled;
        self
    }

    /// Sets the RNG seed (campaigns are fully deterministic given a seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The venue under test.
    pub fn venue(&self) -> &Venue {
        &self.venue
    }

    /// Runs the campaign with the paper's confidence function.
    pub fn run(&self) -> CampaignResult {
        self.run_with_confidence(PaperExp)
    }

    /// Runs the campaign with a custom confidence function (for the
    /// f-function ablation).
    pub fn run_with_confidence<C>(&self, confidence: C) -> CampaignResult
    where
        C: Confidence + Send + Sync + Clone + 'static,
    {
        let env = Environment::new(self.venue.plan.clone(), self.venue.radio.clone());
        let grid = self.grid.clone();
        let server = LocalizationServer::new(self.venue.plan.boundary().clone())
            .with_center_method(self.center_method)
            .with_pdp_estimator(crate::pdp::PdpEstimator::new().with_window(self.pdp_window))
            .with_confidence(confidence);
        let err_model = PositionError::new(self.position_error);

        // Sites are independent (per-(site, trial) RNGs), so fan out
        // across threads; results are ordered by site index either way.
        let site_results: Vec<(SiteOutcome, f64)> = if self.parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .venue
                    .test_sites
                    .iter()
                    .enumerate()
                    .map(|(site_idx, &object)| {
                        let env = &env;
                        let grid = &grid;
                        let server = &server;
                        let err_model = &err_model;
                        scope.spawn(move || {
                            self.run_site(site_idx, object, env, grid, server, err_model)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("site worker panicked"))
                    .collect()
            })
        } else {
            self.venue
                .test_sites
                .iter()
                .enumerate()
                .map(|(site_idx, &object)| {
                    self.run_site(site_idx, object, &env, &grid, &server, &err_model)
                })
                .collect()
        };

        let (outcomes, accuracies) = site_results.into_iter().unzip();
        CampaignResult {
            venue_name: self.venue.name,
            outcomes,
            proximity_accuracy: accuracies,
        }
    }

    /// Runs all trials of one test site, returning its outcome and mean
    /// proximity accuracy.
    fn run_site(
        &self,
        site_idx: usize,
        object: Point,
        env: &Environment,
        grid: &SubcarrierGrid,
        server: &LocalizationServer,
        err_model: &PositionError,
    ) -> (SiteOutcome, f64) {
        let mut errors = Vec::with_capacity(self.trials_per_site);
        let mut acc_sum = 0.0;
        let mut acc_count = 0usize;
        for trial in 0..self.trials_per_site {
            let mut rng = self.trial_rng(site_idx, trial);
            // (reported site, true position) pairs for this round.
            let ap_sites = self.measurement_sites(err_model, &mut rng);
            let pdp_estimator = crate::pdp::PdpEstimator::new().with_window(self.pdp_window);
            let readings: Vec<PdpReading> = ap_sites
                .iter()
                .filter_map(|m| {
                    let array = AntennaArray::half_wavelength(
                        m.true_pos,
                        self.rx_antennas,
                        self.venue.radio.carrier_hz,
                    );
                    // The carrier's body shadows a nomadic AP's links.
                    let blocked_env;
                    let site_env = if self.carrier_blocking && m.nomadic {
                        blocked_env = self.blocked_environment(env, m.true_pos);
                        &blocked_env
                    } else {
                        env
                    };
                    let bursts = site_env.sample_csi_array(
                        object,
                        &array,
                        grid,
                        self.packets_per_site,
                        &mut rng,
                    );
                    let pdp = pdp_estimator.pdp_of_array(&bursts)?;
                    (pdp > 0.0 && pdp.is_finite()).then(|| PdpReading::new(m.site, pdp))
                })
                .collect();

            let judgements = server.judge(&readings);
            if let Some(acc) =
                judgement_accuracy(&judgements, object, |s| true_position(&ap_sites, s))
            {
                acc_sum += acc;
                acc_count += 1;
            }
            let estimate = server
                .localize(&readings)
                .map(|e| e.position)
                .unwrap_or_else(|_| self.venue.plan.boundary().centroid());
            errors.push(estimate.distance(object));
        }
        let accuracy = if acc_count > 0 {
            acc_sum / acc_count as f64
        } else {
            f64::NAN
        };
        (SiteOutcome::new(object, errors), accuracy)
    }

    /// The AP measurement sites of one localization round.
    fn measurement_sites(
        &self,
        err_model: &PositionError,
        rng: &mut StdRng,
    ) -> Vec<MeasurementSite> {
        let mut out = Vec::new();
        match &self.deployment {
            Deployment::Static => {
                for (i, &p) in self.venue.static_deployment().iter().enumerate() {
                    out.push(MeasurementSite::fixed(ApSite::fixed(i + 1, p), p));
                }
            }
            Deployment::Nomadic { steps, pattern } => {
                // Static APs 2…n keep their exact positions.
                for (i, &p) in self.venue.static_aps.iter().enumerate() {
                    out.push(MeasurementSite::fixed(ApSite::fixed(i + 2, p), p));
                }
                // AP 1 walks over {home, P1…}; each *distinct* visited
                // site contributes one measurement, with its reported
                // coordinates perturbed by the ER model.
                let sites = self.venue.nomadic_site_set();
                self.walk_nomad(1, &sites, pattern, *steps, err_model, rng, &mut out);
            }
            Deployment::Fleet { nomads, steps } => {
                let all_homes = self.venue.static_deployment();
                let nomads = (*nomads).min(all_homes.len());
                // Fixed remainder.
                for (i, &p) in all_homes.iter().enumerate().skip(nomads) {
                    out.push(MeasurementSite::fixed(ApSite::fixed(i + 1, p), p));
                }
                // Each nomad walks over its own home plus the shared
                // public sites.
                for (i, &home) in all_homes.iter().enumerate().take(nomads) {
                    let mut sites = vec![home];
                    sites.extend_from_slice(&self.venue.nomadic_sites);
                    self.walk_nomad(
                        i + 1,
                        &sites,
                        &MobilityPattern::Uniform,
                        *steps,
                        err_model,
                        rng,
                        &mut out,
                    );
                }
            }
        }
        out
    }

    /// Walks one nomadic AP over `sites` and appends a measurement per
    /// distinct visited site.
    #[allow(clippy::too_many_arguments)]
    fn walk_nomad(
        &self,
        ap: usize,
        sites: &[Point],
        pattern: &MobilityPattern,
        steps: usize,
        err_model: &PositionError,
        rng: &mut StdRng,
        out: &mut Vec<MeasurementSite>,
    ) {
        let chain = MarkovChain::new(sites.to_vec(), pattern.matrix(sites.len()))
            .expect("pattern matrices are stochastic by construction");
        let mut seen = vec![false; sites.len()];
        let mut visit = 0;
        for idx in chain.walk(0, steps, rng) {
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            let true_pos = sites[idx];
            let reported = err_model.apply(true_pos, rng);
            out.push(MeasurementSite {
                site: ApSite::nomadic(ap, visit, reported),
                true_pos,
                nomadic: true,
            });
            visit += 1;
        }
    }

    /// Environment with the nomadic carrier's body added behind `ap_pos`.
    fn blocked_environment(&self, base: &Environment, ap_pos: Point) -> Environment {
        let center = self.venue.plan.boundary().centroid();
        let away = (ap_pos - center)
            .normalized()
            .unwrap_or(nomloc_geometry::Vec2::new(1.0, 0.0));
        let body_center = ap_pos + away * 0.45;
        let half = 0.2;
        let body = nomloc_geometry::Polygon::rectangle(
            Point::new(body_center.x - half, body_center.y - half),
            Point::new(body_center.x + half, body_center.y + half),
        );
        Environment::new(
            base.plan()
                .with_obstacle(body, nomloc_rfsim::Material::HUMAN),
            self.venue.radio.clone(),
        )
    }

    /// Deterministic per-(site, trial) RNG derived from the campaign seed.
    fn trial_rng(&self, site_idx: usize, trial: usize) -> StdRng {
        let mut s = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(site_idx as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(trial as u64 + 1);
        // splitmix-style finalizer for good bit diffusion.
        s ^= s >> 30;
        s = s.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s ^= s >> 27;
        s = s.wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^= s >> 31;
        StdRng::seed_from_u64(s)
    }
}

/// One AP measurement site of a localization round.
#[derive(Debug, Clone, Copy)]
struct MeasurementSite {
    /// Reported site identity/coordinates.
    site: ApSite,
    /// Ground-truth coordinates.
    true_pos: Point,
    /// Whether a nomadic carrier stands at this site.
    nomadic: bool,
}

impl MeasurementSite {
    fn fixed(site: ApSite, true_pos: Point) -> Self {
        MeasurementSite {
            site,
            true_pos,
            nomadic: false,
        }
    }
}

/// Looks up the true position of a reported AP site.
fn true_position(ap_sites: &[MeasurementSite], site: &ApSite) -> Point {
    ap_sites
        .iter()
        .find(|m| m.site.ap == site.ap && m.site.visit == site.visit)
        .map(|m| m.true_pos)
        .unwrap_or(site.position)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(venue: Venue, deployment: Deployment) -> Campaign {
        Campaign::new(venue, deployment)
            .packets_per_site(12)
            .trials_per_site(2)
            .seed(42)
    }

    #[test]
    fn static_campaign_runs_and_is_deterministic() {
        let c = quick(Venue::lab(), Deployment::Static);
        let a = c.run();
        let b = c.run();
        assert_eq!(a.outcomes.len(), 10);
        assert_eq!(
            a.site_mean_errors(),
            b.site_mean_errors(),
            "same seed, same result"
        );
        assert!(a.mean_error().is_finite());
        assert!(a.slv() >= 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        // With a feasible judgement set the estimate depends only on the
        // half-plane geometry, so a *static* campaign can coincide across
        // seeds. Nomadic with ER > 0 randomizes the reported coordinates,
        // which must show up in the outcomes.
        let a = quick(Venue::lab(), Deployment::nomadic(6))
            .position_error(1.5)
            .run();
        let b = quick(Venue::lab(), Deployment::nomadic(6))
            .position_error(1.5)
            .seed(43)
            .run();
        assert_ne!(a.site_mean_errors(), b.site_mean_errors());
    }

    #[test]
    fn nomadic_campaign_runs_in_lobby() {
        let r = quick(Venue::lobby(), Deployment::nomadic(6)).run();
        assert_eq!(r.outcomes.len(), 12);
        assert!(r.mean_error().is_finite());
        assert!(r.mean_proximity_accuracy() > 0.5, "better than coin flips");
    }

    #[test]
    fn errors_bounded_by_venue_diameter() {
        let venue = Venue::lab();
        let (min, max) = venue.plan.boundary().bounding_box();
        let diameter = min.distance(max);
        let r = quick(venue, Deployment::nomadic(6)).run();
        for o in &r.outcomes {
            for &e in &o.errors {
                assert!(e <= diameter, "error {e} exceeds venue diameter");
            }
        }
    }

    #[test]
    fn proximity_accuracy_in_unit_range() {
        let r = quick(Venue::lab(), Deployment::Static).run();
        for (i, &a) in r.proximity_accuracy.iter().enumerate() {
            assert!((0.0..=1.0).contains(&a), "site {i} accuracy {a}");
        }
    }

    #[test]
    fn position_error_setter_clamps() {
        let c = Campaign::new(Venue::lab(), Deployment::Static).position_error(-3.0);
        // Negative ER clamps to zero rather than panicking.
        let _ = c.run_with_confidence(PaperExp);
    }

    #[test]
    fn fleet_deployment_adds_sites() {
        // More nomads ⇒ more measurement sites ⇒ no worse mean region
        // granularity. Just verify the plumbing here; quality trends are
        // covered by the repro binaries.
        let venue = Venue::lab();
        for nomads in 0..=3 {
            let r = quick(venue.clone(), Deployment::Fleet { nomads, steps: 5 }).run();
            assert!(r.mean_error().is_finite(), "fleet {nomads}");
        }
    }

    #[test]
    fn fleet_zero_equals_static_site_count() {
        let c = quick(
            Venue::lab(),
            Deployment::Fleet {
                nomads: 0,
                steps: 5,
            },
        );
        let err = PositionError::none();
        let mut rng = StdRng::seed_from_u64(1);
        let sites = c.measurement_sites(&err, &mut rng);
        assert_eq!(sites.len(), 4);
    }

    #[test]
    fn mobility_patterns_all_run() {
        for pattern in [
            MobilityPattern::Uniform,
            MobilityPattern::StayBiased,
            MobilityPattern::Sweep,
            MobilityPattern::Corridor,
        ] {
            let r = quick(Venue::lab(), Deployment::Nomadic { steps: 4, pattern }).run();
            assert!(r.mean_error().is_finite(), "{pattern:?}");
        }
    }
}
