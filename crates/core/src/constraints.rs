//! Constraint generation for the SP location estimator (§IV-B).
//!
//! Three families of half-planes feed the LP:
//!
//! * **proximity constraints** (Eq. 6–8) — one per pairwise judgement,
//!   weighted by the confidence factor;
//! * **area-boundary constraints** (Eq. 9–11) — built with *virtual APs*:
//!   a reference point is mirrored across each edge of the (convex) region
//!   and "closer to the reference than to its mirror" pins the object
//!   inside that edge. These carry [`crate::BOUNDARY_WEIGHT`];
//! * **nomadic downscoping constraints** (Eq. 13–15) — the judgements
//!   involving nomadic AP sites; structurally identical to proximity
//!   constraints, they arrive through the same pairwise machinery because
//!   [`crate::proximity::judge_all_pairs`] already treats every nomadic
//!   site as a distinct AP site.

use crate::proximity::ProximityJudgement;
use crate::BOUNDARY_WEIGHT;
use nomloc_geometry::{HalfPlane, Point, Polygon};
use nomloc_lp::relax::WeightedConstraint;

/// Converts one proximity judgement into its weighted half-plane (Eq. 7).
pub fn judgement_constraint(j: &ProximityJudgement) -> WeightedConstraint {
    WeightedConstraint::new(
        HalfPlane::closer_to(j.near.position, j.far.position),
        j.weight,
    )
}

/// Converts a batch of judgements.
pub fn judgement_constraints(judgements: &[ProximityJudgement]) -> Vec<WeightedConstraint> {
    judgements.iter().map(judgement_constraint).collect()
}

/// Virtual APs: the mirror images of `reference` across each edge of
/// `region` (Fig. 4).
///
/// The paper notes "the site of AP 1 could be any other sites within the
/// area"; any interior reference produces the same half-planes.
pub fn virtual_aps(region: &Polygon, reference: Point) -> Vec<Point> {
    region
        .edges()
        .filter_map(|e| e.line().map(|l| l.mirror(reference)))
        .collect()
}

/// Area-boundary constraints for a convex region (Eq. 9–11): "closer to
/// the reference than to each of its virtual APs", at boundary weight.
///
/// For a reference strictly inside the region these half-planes are exactly
/// the interior sides of the region's edges.
pub fn boundary_constraints(region: &Polygon, reference: Point) -> Vec<WeightedConstraint> {
    region
        .edges()
        .filter_map(|e| {
            let line = e.line()?;
            let vap = line.mirror(reference);
            if vap.distance(reference) < 1e-9 {
                // Reference on the edge: the mirror degenerates; fall back
                // to the half-plane of the edge itself via its normal.
                return None;
            }
            Some(WeightedConstraint::new(
                HalfPlane::closer_to(reference, vap),
                BOUNDARY_WEIGHT,
            ))
        })
        .collect()
}

/// Full constraint set for one convex region: judgements plus boundary.
pub fn assemble(judgements: &[ProximityJudgement], region: &Polygon) -> Vec<WeightedConstraint> {
    let mut out = judgement_constraints(judgements);
    out.extend(boundary_constraints(region, region.centroid()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proximity::ApSite;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    fn judgement(nx: f64, ny: f64, fx: f64, fy: f64, w: f64) -> ProximityJudgement {
        ProximityJudgement {
            near: ApSite::fixed(0, Point::new(nx, ny)),
            far: ApSite::fixed(1, Point::new(fx, fy)),
            weight: w,
        }
    }

    #[test]
    fn judgement_constraint_is_bisector() {
        let j = judgement(2.0, 5.0, 8.0, 5.0, 0.8);
        let c = judgement_constraint(&j);
        assert_eq!(c.weight, 0.8);
        // Points nearer the near-AP satisfy; midpoint is on the boundary.
        assert!(c.halfplane.contains(Point::new(0.0, 0.0)));
        assert!(!c.halfplane.contains(Point::new(9.0, 9.0)));
        assert!(c.halfplane.violation(Point::new(5.0, 5.0)).abs() < 1e-12);
    }

    #[test]
    fn virtual_aps_one_per_edge() {
        let vaps = virtual_aps(&square(), Point::new(3.0, 4.0));
        assert_eq!(vaps.len(), 4);
        // Mirror across y=0 is (3, −4); across x=10 is (17, 4); etc.
        assert!(vaps
            .iter()
            .any(|p| p.distance(Point::new(3.0, -4.0)) < 1e-9));
        assert!(vaps
            .iter()
            .any(|p| p.distance(Point::new(17.0, 4.0)) < 1e-9));
        assert!(vaps
            .iter()
            .any(|p| p.distance(Point::new(3.0, 16.0)) < 1e-9));
        assert!(vaps
            .iter()
            .any(|p| p.distance(Point::new(-3.0, 4.0)) < 1e-9));
        // All virtual APs are outside the region.
        assert!(vaps.iter().all(|p| !square().contains(*p)));
    }

    #[test]
    fn boundary_constraints_equal_region_interior() {
        // The mirror construction must reproduce the region: a point is
        // inside the square iff it satisfies all boundary constraints.
        let cs = boundary_constraints(&square(), Point::new(2.0, 7.0));
        assert_eq!(cs.len(), 4);
        for c in &cs {
            assert_eq!(c.weight, BOUNDARY_WEIGHT);
        }
        let grid: Vec<Point> = (-2..13)
            .flat_map(|i| (-2..13).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        for p in grid {
            let inside = square().contains(p);
            let satisfied = cs.iter().all(|c| c.halfplane.contains(p));
            assert_eq!(inside, satisfied, "mismatch at {p}");
        }
    }

    #[test]
    fn boundary_constraints_independent_of_reference() {
        // "The site of AP 1 could be any other sites within the area."
        let a = boundary_constraints(&square(), Point::new(1.0, 1.0));
        let b = boundary_constraints(&square(), Point::new(8.0, 5.0));
        let probes = [
            Point::new(5.0, 5.0),
            Point::new(-1.0, 5.0),
            Point::new(5.0, 11.0),
            Point::new(0.0, 0.0),
        ];
        for p in probes {
            let sa = a.iter().all(|c| c.halfplane.contains(p));
            let sb = b.iter().all(|c| c.halfplane.contains(p));
            assert_eq!(sa, sb, "reference changed the region at {p}");
        }
    }

    #[test]
    fn boundary_constraints_on_triangle() {
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(0.0, 6.0),
        ])
        .unwrap();
        let cs = boundary_constraints(&tri, tri.centroid());
        assert_eq!(cs.len(), 3);
        assert!(cs
            .iter()
            .all(|c| c.halfplane.contains(Point::new(1.0, 1.0))));
        assert!(cs
            .iter()
            .any(|c| !c.halfplane.contains(Point::new(4.0, 4.0))));
    }

    #[test]
    fn assemble_combines_both_families() {
        let js = [judgement(2.0, 5.0, 8.0, 5.0, 0.8)];
        let all = assemble(&js, &square());
        assert_eq!(all.len(), 1 + 4);
        let n_boundary = all.iter().filter(|c| c.weight == BOUNDARY_WEIGHT).count();
        assert_eq!(n_boundary, 4);
    }

    #[test]
    fn nomadic_sites_add_constraints_via_pairs() {
        // Eq. 13–15: S nomadic sites × (n−1) static APs appear naturally as
        // pairwise judgements; with 3 static + 2 nomadic sites we get
        // C(5,2) = 10 constraints, of which 2 × 3 = 6 involve a nomadic
        // site paired with a static one.
        use crate::confidence::PaperExp;
        use crate::proximity::{judge_all_pairs, PdpReading};
        let mut readings = vec![
            PdpReading::new(ApSite::fixed(1, Point::new(0.0, 0.0)), 1.0),
            PdpReading::new(ApSite::fixed(2, Point::new(10.0, 0.0)), 0.8),
            PdpReading::new(ApSite::fixed(3, Point::new(0.0, 10.0)), 0.6),
        ];
        readings.push(PdpReading::new(
            ApSite::nomadic(0, 0, Point::new(5.0, 5.0)),
            2.0,
        ));
        readings.push(PdpReading::new(
            ApSite::nomadic(0, 1, Point::new(6.0, 4.0)),
            2.5,
        ));
        let js = judge_all_pairs(&readings, &PaperExp);
        assert_eq!(js.len(), 10);
        let nomadic_static = js
            .iter()
            .filter(|j| (j.near.ap == 0) != (j.far.ap == 0))
            .count();
        assert_eq!(nomadic_static, 6);
        let cs = judgement_constraints(&js);
        assert_eq!(cs.len(), 10);
    }
}
