//! The NomLoc localization server (Fig. 2).
//!
//! The server is the third tier of the architecture: APs (static and
//! nomadic) forward CSI bursts for the object's probe packets together with
//! their own reported coordinates; the server extracts per-link PDPs, forms
//! pairwise proximity judgements, and runs the SP estimator.
//!
//! Serving-scale features on top of the paper pipeline:
//!
//! * the venue geometry (convex decomposition + boundary constraints) is
//!   precomputed once into a [`VenueCache`] at construction, so per-query
//!   work touches only the reading-dependent constraints;
//! * [`LocalizationServer::localize_batch`] / `process_batch` fan request
//!   slices across scoped worker threads with index-ordered result slots —
//!   the same deterministic fan-out discipline as `Campaign::parallel` —
//!   so serial and parallel runs return bit-identical estimates;
//! * a [`PipelineStats`] layer counts stage work and latency, exposed via
//!   [`LocalizationServer::stats_snapshot`].

use crate::cache::VenueCache;
use crate::confidence::{Confidence, PaperExp};
use crate::estimator::{
    EstimateError, EstimateQuality, FailureCause, LocationEstimate, SpEstimator,
};
use crate::pdp::{PdpEstimator, PdpScratch};
use crate::proximity::{judge_all_pairs, ApSite, PdpReading, ProximityJudgement};
use crate::stats::{PipelineStats, StatsSnapshot};
use nomloc_geometry::{Point, Polygon};
use nomloc_lp::center::CenterMethod;
use nomloc_rfsim::CsiSnapshot;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// A CSI report from one AP site: the burst of snapshots it captured for
/// the object's probe packets, tagged with the site's reported coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CsiReport {
    /// The reporting AP site (reported position, not necessarily truth).
    pub site: ApSite,
    /// CSI snapshots, one per captured packet.
    pub burst: Vec<CsiSnapshot>,
}

/// The NomLoc localization server.
///
/// # Example
///
/// ```
/// use nomloc_core::{ApSite, LocalizationServer, PdpReading};
/// use nomloc_geometry::{Point, Polygon};
///
/// let area = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
/// let server = LocalizationServer::new(area);
/// let readings = vec![
///     PdpReading::new(ApSite::fixed(1, Point::new(1.0, 1.0)), 1.0e-6),
///     PdpReading::new(ApSite::fixed(2, Point::new(9.0, 1.0)), 2.0e-7),
///     PdpReading::new(ApSite::fixed(3, Point::new(5.0, 9.0)), 4.0e-7),
/// ];
/// let estimate = server.localize(&readings)?;
/// // Strongest PDP at AP 1 pulls the estimate into its corner.
/// assert!(estimate.position.x < 5.0 && estimate.position.y < 6.0);
/// # Ok::<(), nomloc_core::estimator::EstimateError>(())
/// ```
pub struct LocalizationServer {
    cache: VenueCache,
    pdp: PdpEstimator,
    confidence: Box<dyn Confidence + Send + Sync>,
    estimator: SpEstimator,
    workers: usize,
    degrade: bool,
    stats: Arc<PipelineStats>,
}

impl std::fmt::Debug for LocalizationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalizationServer")
            .field("area", self.cache.area())
            .field("pdp", &self.pdp)
            .field("estimator", &self.estimator)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl LocalizationServer {
    /// Creates a server for the given area of interest with default
    /// components (paper confidence function, Chebyshev center) and one
    /// batch worker per available CPU.
    ///
    /// The venue geometry is decomposed and its boundary constraints
    /// precomputed here, once.
    pub fn new(area: Polygon) -> Self {
        LocalizationServer {
            cache: VenueCache::new(area),
            pdp: PdpEstimator::default(),
            confidence: Box::new(PaperExp),
            estimator: SpEstimator::default(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            degrade: true,
            stats: Arc::new(PipelineStats::new()),
        }
    }

    /// Shares a [`PipelineStats`] instance with this server. The
    /// multi-venue registry hands every venue server the same instance so
    /// aggregate serving counters (batches, queue depth, reply encoding)
    /// stay global while per-venue breakdowns live in the registry.
    pub fn with_stats(mut self, stats: Arc<PipelineStats>) -> Self {
        self.stats = stats;
        self
    }

    /// Replaces the confidence function.
    pub fn with_confidence<C>(mut self, confidence: C) -> Self
    where
        C: Confidence + Send + Sync + 'static,
    {
        self.confidence = Box::new(confidence);
        self
    }

    /// Sets the center method of the SP estimator.
    pub fn with_center_method(mut self, method: CenterMethod) -> Self {
        self.estimator = self.estimator.with_center_method(method);
        self
    }

    /// Replaces the PDP estimator configuration.
    pub fn with_pdp_estimator(mut self, pdp: PdpEstimator) -> Self {
        self.pdp = pdp;
        self
    }

    /// Sets the number of worker threads used by the batch entry points.
    /// `0` or `1` means fully serial batches.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables the graceful-degradation ladder (on by
    /// default). With degradation off the server is *strict*: requests the
    /// full pipeline cannot answer return a typed [`EstimateError`] instead
    /// of a lower-[`EstimateQuality`] estimate.
    pub fn with_degradation(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// The configured worker-thread count (see
    /// [`LocalizationServer::with_workers`]) — the multi-venue registry
    /// mirrors it when building per-venue servers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The area of interest.
    pub fn area(&self) -> &Polygon {
        self.cache.area()
    }

    /// The precomputed venue geometry.
    pub fn venue_cache(&self) -> &VenueCache {
        &self.cache
    }

    /// The live pipeline counters.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// A shared handle to the live pipeline counters — clone this into
    /// [`LocalizationServer::with_stats`] to make several servers record
    /// into one aggregate instance.
    pub fn stats_arc(&self) -> Arc<PipelineStats> {
        Arc::clone(&self.stats)
    }

    /// Plain-data copy of the current pipeline counters and latency
    /// histograms.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the pipeline counters and histograms.
    pub fn reset_stats(&self) {
        self.stats.reset()
    }

    /// Extracts PDP readings from raw CSI reports, skipping empty bursts.
    ///
    /// PDP extraction runs against a thread-local [`PdpScratch`], so a
    /// long-lived serving thread (a daemon batcher, or the caller itself
    /// when `workers <= 1` keeps batches inline) processes request after
    /// request with zero steady-state allocation in the DSP front-end.
    /// All bursts of a request are handed to the estimator together
    /// ([`PdpEstimator::pdp_of_bursts_with`]) so their snapshots share
    /// lockstep batched IFFT dispatches across report boundaries.
    pub fn extract_readings(&self, reports: &[CsiReport]) -> Vec<PdpReading> {
        thread_local! {
            static PDP_SCRATCH: RefCell<PdpScratch> = RefCell::new(PdpScratch::new());
            static BURST_REFS: RefCell<Vec<Option<f64>>> = const { RefCell::new(Vec::new()) };
        }
        let start = Instant::now();
        let readings: Vec<PdpReading> = PDP_SCRATCH.with(|scratch| {
            BURST_REFS.with(|pdps| {
                let scratch = &mut *scratch.borrow_mut();
                let pdps = &mut *pdps.borrow_mut();
                let bursts: Vec<&[CsiSnapshot]> =
                    reports.iter().map(|r| r.burst.as_slice()).collect();
                self.pdp.pdp_of_bursts_with(&bursts, scratch, pdps);
                reports
                    .iter()
                    .zip(pdps.iter())
                    .filter_map(|(r, pdp)| {
                        // try_new (not new): a non-finite PDP or site
                        // position from a hostile report must drop the
                        // reading, never panic.
                        PdpReading::try_new(r.site, (*pdp)?).ok()
                    })
                    .collect()
            })
        });
        self.stats
            .record_extract(reports.len() as u64, readings.len() as u64, start.elapsed());
        readings
    }

    /// Forms all pairwise proximity judgements from readings.
    pub fn judge(&self, readings: &[PdpReading]) -> Vec<ProximityJudgement> {
        let start = Instant::now();
        let judgements = judge_all_pairs(readings, &JudgeAdapter(self.confidence.as_ref()));
        self.stats
            .record_judge(judgements.len() as u64, start.elapsed());
        judgements
    }

    /// Localizes the object from PDP readings.
    ///
    /// Non-finite readings (NaN/Inf PDP or site position — possible when
    /// callers build [`PdpReading`] structs directly from untrusted input)
    /// are filtered out and counted, never solved. When the remaining
    /// pipeline cannot produce a full SP estimate the degradation ladder
    /// steps down — full estimate → site-constraints-only region →
    /// weighted centroid of visited sites — and the rung is reported in
    /// [`LocationEstimate::quality`]. Strict servers
    /// ([`LocalizationServer::with_degradation`]`(false)`) return the
    /// typed error instead.
    ///
    /// # Errors
    ///
    /// Forwards [`EstimateError`] from the SP estimator.
    pub fn localize(&self, readings: &[PdpReading]) -> Result<LocationEstimate, EstimateError> {
        let filtered: Vec<PdpReading>;
        let valid: &[PdpReading] = if readings.iter().all(reading_is_valid) {
            readings
        } else {
            filtered = readings.iter().copied().filter(reading_is_valid).collect();
            self.stats
                .record_invalid_readings((readings.len() - filtered.len()) as u64);
            self.stats.record_cause(FailureCause::InvalidInput);
            &filtered
        };
        let judgements = self.judge(valid);
        let start = Instant::now();
        let result = if valid.len() == 1 {
            // One reading forms no pairwise judgement: the full pipeline
            // has nothing to solve. Degrade straight to the centroid rung
            // (here, the single visited site) or refuse in strict mode.
            if self.degrade {
                self.stats
                    .record_cause(FailureCause::InsufficientJudgements);
                Ok(self.centroid_estimate(valid))
            } else {
                Err(EstimateError::InsufficientJudgements)
            }
        } else {
            match self.estimator.estimate_cached(&judgements, &self.cache) {
                Ok(est) => Ok(est),
                Err(err) if self.degrade => {
                    self.stats.record_cause(err.cause());
                    self.degrade_after_estimate_failure(valid, err)
                }
                Err(err) => Err(err),
            }
        };
        match &result {
            Ok(est) => {
                // LP rows built for this query: per convex piece, every
                // judgement constraint plus the piece's cached boundary.
                let constraints = self.cache.pieces().len() as u64 * judgements.len() as u64
                    + self.cache.n_boundary_constraints() as u64;
                self.stats.record_solve(
                    constraints,
                    est.lp_iterations,
                    est.warm_start_hits,
                    est.phase1_pivots_saved,
                    est.relaxation_cost > 1e-9,
                    est.quality,
                    start.elapsed(),
                );
            }
            Err(err) => self.stats.record_failure(err.cause(), start.elapsed()),
        }
        result
    }

    /// The ladder below a failed full-quality solve: re-solve with the
    /// venue boundary constraints only (the [`EstimateQuality::Region`]
    /// rung), and if even that fails fall to the weighted centroid of the
    /// visited sites. The original error is returned only when no rung is
    /// usable.
    fn degrade_after_estimate_failure(
        &self,
        valid: &[PdpReading],
        err: EstimateError,
    ) -> Result<LocationEstimate, EstimateError> {
        if let Ok(region) = self.estimator.estimate_cached(&[], &self.cache) {
            return Ok(region);
        }
        if !valid.is_empty() {
            return Ok(self.centroid_estimate(valid));
        }
        Err(err)
    }

    /// The last rung: PDP-weighted centroid of the visited AP sites,
    /// clamped into the area. Well-defined for any non-empty set of valid
    /// readings (PDPs are strictly positive) and LP-free, so it cannot
    /// fail.
    fn centroid_estimate(&self, valid: &[PdpReading]) -> LocationEstimate {
        let total: f64 = valid.iter().map(|r| r.pdp).sum();
        let mut x = 0.0;
        let mut y = 0.0;
        for r in valid {
            x += r.site.position.x * r.pdp;
            y += r.site.position.y * r.pdp;
        }
        let position = self
            .cache
            .area()
            .clamp_point(Point::new(x / total, y / total));
        LocationEstimate {
            position,
            relaxation_cost: 0.0,
            region_area: 0.0,
            n_constraints: 0,
            n_winning_pieces: 0,
            lp_iterations: 0,
            warm_start_hits: 0,
            phase1_pivots_saved: 0,
            quality: EstimateQuality::Centroid,
        }
    }

    /// Full pipeline: CSI reports → PDPs → judgements → estimate.
    ///
    /// # Errors
    ///
    /// Forwards [`EstimateError`] from the SP estimator.
    pub fn process(&self, reports: &[CsiReport]) -> Result<LocationEstimate, EstimateError> {
        let readings = self.extract_readings(reports);
        self.localize(&readings)
    }

    /// Localizes a batch of independent requests, fanning them across the
    /// configured worker threads.
    ///
    /// Determinism: requests are assigned to index-ordered result slots —
    /// request `i` always produces `results[i]` — and the pipeline is
    /// RNG-free, so serial (`workers ≤ 1`) and parallel runs are
    /// bit-identical. This mirrors the per-index fan-out discipline of
    /// `Campaign::parallel`, where each unit of work is keyed by its index
    /// (there, a splitmix-derived per-site seed) rather than by the thread
    /// that happens to run it.
    pub fn localize_batch(
        &self,
        requests: &[Vec<PdpReading>],
    ) -> Vec<Result<LocationEstimate, EstimateError>> {
        self.run_batch(requests.len(), |i| self.localize(&requests[i]))
    }

    /// Runs the full pipeline over a batch of raw CSI report sets. Same
    /// determinism contract as [`LocalizationServer::localize_batch`].
    pub fn process_batch(
        &self,
        requests: &[Vec<CsiReport>],
    ) -> Vec<Result<LocationEstimate, EstimateError>> {
        self.run_batch(requests.len(), |i| self.process(&requests[i]))
    }

    /// Fans `n` index-keyed jobs across scoped threads in contiguous
    /// chunks, writing each result into its own slot.
    fn run_batch<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n > 0 {
            self.stats.record_batch(n as u64);
        }
        // Fan out only when every worker gets at least two slots: spawning
        // and joining a scoped thread costs about as much as one request's
        // solve, so a thread per single-request chunk burns more CPU than
        // it buys. Results are bit-identical either way (index-keyed
        // slots, RNG-free pipeline), so the clamp is purely a scheduling
        // decision.
        let workers = self.workers.min(n / 2).max(1);
        if workers <= 1 {
            return (0..n).map(job).collect();
        }
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            let job = &job;
            for (w, slots) in results.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (k, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(job(w * chunk + k));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("batch worker filled every slot"))
            .collect()
    }
}

/// A reading the pipeline can safely solve: finite positive PDP at a
/// finite site position.
fn reading_is_valid(r: &PdpReading) -> bool {
    r.pdp > 0.0
        && r.pdp.is_finite()
        && r.site.position.x.is_finite()
        && r.site.position.y.is_finite()
}

/// Adapter so a `&dyn Confidence` can be passed where `impl Confidence` is
/// expected.
struct JudgeAdapter<'a>(&'a (dyn Confidence + Send + Sync));

impl Confidence for JudgeAdapter<'_> {
    fn confidence(&self, x: f64) -> f64 {
        self.0.confidence(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::HardDecision;
    use nomloc_geometry::Point;
    use nomloc_rfsim::{Environment, FloorPlan, RadioConfig, SubcarrierGrid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(12.0, 12.0))
    }

    fn reading(ap: usize, x: f64, y: f64, pdp: f64) -> PdpReading {
        PdpReading::new(ApSite::fixed(ap, Point::new(x, y)), pdp)
    }

    #[test]
    fn localize_pulls_toward_strong_pdp() {
        let server = LocalizationServer::new(square());
        let readings = vec![
            reading(1, 1.0, 1.0, 1e-5),
            reading(2, 11.0, 1.0, 1e-7),
            reading(3, 11.0, 11.0, 1e-7),
            reading(4, 1.0, 11.0, 1e-6),
        ];
        let est = server.localize(&readings).unwrap();
        // AP1's corner.
        assert!(
            est.position.x < 6.0 && est.position.y < 6.0,
            "{}",
            est.position
        );
    }

    #[test]
    fn judgement_count() {
        let server = LocalizationServer::new(square());
        let readings: Vec<PdpReading> = (0..4)
            .map(|i| reading(i, i as f64, 0.0, 1e-6 * (i + 1) as f64))
            .collect();
        assert_eq!(server.judge(&readings).len(), 6);
    }

    #[test]
    fn empty_readings_give_area_center() {
        let server = LocalizationServer::new(square());
        let est = server.localize(&[]).unwrap();
        assert!(est.position.distance(Point::new(6.0, 6.0)) < 1e-3);
    }

    #[test]
    fn confidence_swap_changes_weights() {
        let soft = LocalizationServer::new(square());
        let hard = LocalizationServer::new(square()).with_confidence(HardDecision);
        let readings = vec![reading(0, 1.0, 1.0, 2e-6), reading(1, 11.0, 11.0, 1e-6)];
        let js_soft = soft.judge(&readings);
        let js_hard = hard.judge(&readings);
        assert!(js_soft[0].weight < 1.0);
        assert_eq!(js_hard[0].weight, 1.0);
    }

    #[test]
    fn process_end_to_end_with_simulated_csi() {
        let plan = FloorPlan::builder(square()).build();
        let env = Environment::new(plan, RadioConfig::default());
        let server = LocalizationServer::new(square());
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(17);

        let aps = [
            Point::new(1.0, 1.0),
            Point::new(11.0, 1.0),
            Point::new(11.0, 11.0),
            Point::new(1.0, 11.0),
        ];
        let object = Point::new(3.5, 4.0);
        let reports: Vec<CsiReport> = aps
            .iter()
            .enumerate()
            .map(|(i, &ap)| CsiReport {
                site: ApSite::fixed(i + 1, ap),
                burst: env.sample_csi_burst(object, ap, &grid, 30, &mut rng),
            })
            .collect();
        let est = server.process(&reports).unwrap();
        assert!(
            est.position.distance(object) < 4.0,
            "open-room estimate {} vs truth {object}",
            est.position
        );
    }

    #[test]
    fn empty_bursts_are_skipped() {
        let server = LocalizationServer::new(square());
        let reports = vec![CsiReport {
            site: ApSite::fixed(1, Point::new(1.0, 1.0)),
            burst: vec![],
        }];
        assert!(server.extract_readings(&reports).is_empty());
        // Degenerates to the area center rather than failing.
        assert!(server.process(&reports).is_ok());
    }

    #[test]
    fn debug_is_nonempty() {
        let server = LocalizationServer::new(square());
        assert!(format!("{server:?}").contains("LocalizationServer"));
    }

    fn request(seed: u64) -> Vec<PdpReading> {
        // Deterministic pseudo-PDPs spread over four corner APs.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..4)
            .map(|i| {
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                let frac = (x >> 11) as f64 / (1u64 << 53) as f64;
                let corner = [(1.0, 1.0), (11.0, 1.0), (11.0, 11.0), (1.0, 11.0)][i];
                reading(i, corner.0, corner.1, 1e-7 + 1e-5 * frac)
            })
            .collect()
    }

    #[test]
    fn batch_matches_serial_loop() {
        let requests: Vec<Vec<PdpReading>> = (0..17).map(request).collect();
        let server = LocalizationServer::new(square()).with_workers(4);
        let batch = server.localize_batch(&requests);
        let serial: Vec<_> = requests.iter().map(|r| server.localize(r)).collect();
        assert_eq!(batch, serial);
    }

    #[test]
    fn empty_batch_is_fine() {
        let server = LocalizationServer::new(square()).with_workers(8);
        assert!(server.localize_batch(&[]).is_empty());
        assert!(server.process_batch(&[]).is_empty());
    }

    #[test]
    fn more_workers_than_requests() {
        let requests: Vec<Vec<PdpReading>> = (0..3).map(request).collect();
        let server = LocalizationServer::new(square()).with_workers(64);
        assert_eq!(server.localize_batch(&requests).len(), 3);
    }

    #[test]
    fn stats_count_requests_and_stages() {
        let server = LocalizationServer::new(square()).with_workers(2);
        let requests: Vec<Vec<PdpReading>> = (0..6).map(request).collect();
        let results = server.localize_batch(&requests);
        assert!(results.iter().all(|r| r.is_ok()));
        let c = server.stats_snapshot().counters;
        assert_eq!(c.requests, 6);
        assert_eq!(c.judgements_formed, 6 * 6); // C(4,2) judgements each
        assert!(c.simplex_iterations > 0);
        assert!(
            c.warm_start_hits > 0,
            "center LPs should warm-start from the relaxation witness"
        );
        assert_eq!(c.estimate_failures, 0);
        server.reset_stats();
        assert_eq!(server.stats_snapshot().counters.requests, 0);
    }

    #[test]
    fn full_quality_on_the_happy_path() {
        let server = LocalizationServer::new(square());
        let est = server.localize(&request(3)).unwrap();
        assert_eq!(est.quality, EstimateQuality::Full);
        let c = server.stats_snapshot().counters;
        assert_eq!(c.quality_full, 1);
        assert_eq!(c.quality_region + c.quality_centroid, 0);
    }

    #[test]
    fn empty_request_serves_the_region_rung() {
        let server = LocalizationServer::new(square());
        let est = server.localize(&[]).unwrap();
        assert_eq!(est.quality, EstimateQuality::Region);
        assert_eq!(server.stats_snapshot().counters.quality_region, 1);
    }

    #[test]
    fn single_reading_degrades_to_centroid() {
        let server = LocalizationServer::new(square());
        let est = server.localize(&[reading(1, 3.0, 4.0, 1e-6)]).unwrap();
        assert_eq!(est.quality, EstimateQuality::Centroid);
        // One site: the centroid is that site's position.
        assert!(est.position.distance(Point::new(3.0, 4.0)) < 1e-9);
        let c = server.stats_snapshot().counters;
        assert_eq!(c.quality_centroid, 1);
        assert_eq!(c.cause_insufficient_judgements, 1);
        assert_eq!(c.estimate_failures, 0, "degraded, not failed");
    }

    #[test]
    fn centroid_is_clamped_into_the_area() {
        // A nomadic site reporting coordinates outside the venue cannot
        // drag the centroid rung out of the area polygon.
        let server = LocalizationServer::new(square());
        let est = server.localize(&[reading(1, 40.0, -5.0, 1e-6)]).unwrap();
        assert_eq!(est.quality, EstimateQuality::Centroid);
        let area = square();
        assert!(
            area.contains(est.position) || area.distance_to_boundary(est.position) < 1e-6,
            "{} escaped",
            est.position
        );
    }

    #[test]
    fn strict_mode_returns_typed_errors() {
        let server = LocalizationServer::new(square()).with_degradation(false);
        let err = server.localize(&[reading(1, 3.0, 4.0, 1e-6)]).unwrap_err();
        assert_eq!(err, EstimateError::InsufficientJudgements);
        let c = server.stats_snapshot().counters;
        assert_eq!(c.estimate_failures, 1);
        assert_eq!(c.cause_insufficient_judgements, 1);
    }

    #[test]
    fn invalid_readings_are_filtered_not_panicked() {
        let server = LocalizationServer::new(square());
        // Struct-literal readings bypass try_new — exactly what hostile
        // in-process callers could do. The server must filter, count, and
        // still answer from the valid remainder.
        let mut readings = request(5);
        readings.push(PdpReading {
            site: ApSite::fixed(9, Point::new(f64::NAN, 2.0)),
            pdp: 1e-6,
        });
        readings.push(PdpReading {
            site: ApSite::fixed(10, Point::new(1.0, 2.0)),
            pdp: f64::INFINITY,
        });
        let est = server.localize(&readings).unwrap();
        assert_eq!(est.quality, EstimateQuality::Full);
        let c = server.stats_snapshot().counters;
        assert_eq!(c.invalid_readings, 2);
        assert_eq!(c.cause_invalid_input, 1);
        // The valid four readings alone decide the estimate.
        let clean = server.localize(&request(5)).unwrap();
        assert_eq!(est, clean);
    }

    #[test]
    fn all_invalid_readings_degrade_to_region() {
        let server = LocalizationServer::new(square());
        let readings = vec![PdpReading {
            site: ApSite::fixed(1, Point::new(2.0, 2.0)),
            pdp: f64::NAN,
        }];
        let est = server.localize(&readings).unwrap();
        // Nothing valid survives: boundary-only region estimate.
        assert_eq!(est.quality, EstimateQuality::Region);
        assert!(est.position.distance(Point::new(6.0, 6.0)) < 1e-3);
    }

    #[test]
    fn servers_can_share_one_stats_instance() {
        let a = LocalizationServer::new(square());
        let b = LocalizationServer::new(square()).with_stats(a.stats_arc());
        a.localize(&request(1)).unwrap();
        b.localize(&request(2)).unwrap();
        // Both servers recorded into the same counters.
        assert_eq!(a.stats_snapshot().counters.requests, 2);
        assert_eq!(b.stats_snapshot().counters.requests, 2);
    }

    #[test]
    fn venue_cache_is_exposed() {
        let server = LocalizationServer::new(square());
        assert_eq!(server.venue_cache().pieces().len(), 1);
        assert_eq!(server.venue_cache().n_boundary_constraints(), 4);
    }
}
