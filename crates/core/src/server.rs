//! The NomLoc localization server (Fig. 2).
//!
//! The server is the third tier of the architecture: APs (static and
//! nomadic) forward CSI bursts for the object's probe packets together with
//! their own reported coordinates; the server extracts per-link PDPs, forms
//! pairwise proximity judgements, and runs the SP estimator.

use crate::confidence::{Confidence, PaperExp};
use crate::estimator::{EstimateError, LocationEstimate, SpEstimator};
use crate::pdp::PdpEstimator;
use crate::proximity::{judge_all_pairs, ApSite, PdpReading, ProximityJudgement};
use nomloc_geometry::Polygon;
use nomloc_lp::center::CenterMethod;
use nomloc_rfsim::CsiSnapshot;

/// A CSI report from one AP site: the burst of snapshots it captured for
/// the object's probe packets, tagged with the site's reported coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CsiReport {
    /// The reporting AP site (reported position, not necessarily truth).
    pub site: ApSite,
    /// CSI snapshots, one per captured packet.
    pub burst: Vec<CsiSnapshot>,
}

/// The NomLoc localization server.
///
/// # Example
///
/// ```
/// use nomloc_core::{ApSite, LocalizationServer, PdpReading};
/// use nomloc_geometry::{Point, Polygon};
///
/// let area = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
/// let server = LocalizationServer::new(area);
/// let readings = vec![
///     PdpReading::new(ApSite::fixed(1, Point::new(1.0, 1.0)), 1.0e-6),
///     PdpReading::new(ApSite::fixed(2, Point::new(9.0, 1.0)), 2.0e-7),
///     PdpReading::new(ApSite::fixed(3, Point::new(5.0, 9.0)), 4.0e-7),
/// ];
/// let estimate = server.localize(&readings)?;
/// // Strongest PDP at AP 1 pulls the estimate into its corner.
/// assert!(estimate.position.x < 5.0 && estimate.position.y < 6.0);
/// # Ok::<(), nomloc_core::estimator::EstimateError>(())
/// ```
pub struct LocalizationServer {
    area: Polygon,
    pdp: PdpEstimator,
    confidence: Box<dyn Confidence + Send + Sync>,
    estimator: SpEstimator,
}

impl std::fmt::Debug for LocalizationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalizationServer")
            .field("area", &self.area)
            .field("pdp", &self.pdp)
            .field("estimator", &self.estimator)
            .finish_non_exhaustive()
    }
}

impl LocalizationServer {
    /// Creates a server for the given area of interest with default
    /// components (paper confidence function, Chebyshev center).
    pub fn new(area: Polygon) -> Self {
        LocalizationServer {
            area,
            pdp: PdpEstimator::default(),
            confidence: Box::new(PaperExp),
            estimator: SpEstimator::default(),
        }
    }

    /// Replaces the confidence function.
    pub fn with_confidence<C>(mut self, confidence: C) -> Self
    where
        C: Confidence + Send + Sync + 'static,
    {
        self.confidence = Box::new(confidence);
        self
    }

    /// Sets the center method of the SP estimator.
    pub fn with_center_method(mut self, method: CenterMethod) -> Self {
        self.estimator = self.estimator.with_center_method(method);
        self
    }

    /// Replaces the PDP estimator configuration.
    pub fn with_pdp_estimator(mut self, pdp: PdpEstimator) -> Self {
        self.pdp = pdp;
        self
    }

    /// The area of interest.
    pub fn area(&self) -> &Polygon {
        &self.area
    }

    /// Extracts PDP readings from raw CSI reports, skipping empty bursts.
    pub fn extract_readings(&self, reports: &[CsiReport]) -> Vec<PdpReading> {
        reports
            .iter()
            .filter_map(|r| {
                let pdp = self.pdp.pdp_of_burst(&r.burst)?;
                (pdp > 0.0 && pdp.is_finite()).then(|| PdpReading::new(r.site, pdp))
            })
            .collect()
    }

    /// Forms all pairwise proximity judgements from readings.
    pub fn judge(&self, readings: &[PdpReading]) -> Vec<ProximityJudgement> {
        judge_all_pairs(readings, &JudgeAdapter(self.confidence.as_ref()))
    }

    /// Localizes the object from PDP readings.
    ///
    /// # Errors
    ///
    /// Forwards [`EstimateError`] from the SP estimator.
    pub fn localize(&self, readings: &[PdpReading]) -> Result<LocationEstimate, EstimateError> {
        let judgements = self.judge(readings);
        self.estimator.estimate(&judgements, &self.area)
    }

    /// Full pipeline: CSI reports → PDPs → judgements → estimate.
    ///
    /// # Errors
    ///
    /// Forwards [`EstimateError`] from the SP estimator.
    pub fn process(&self, reports: &[CsiReport]) -> Result<LocationEstimate, EstimateError> {
        let readings = self.extract_readings(reports);
        self.localize(&readings)
    }
}

/// Adapter so a `&dyn Confidence` can be passed where `impl Confidence` is
/// expected.
struct JudgeAdapter<'a>(&'a (dyn Confidence + Send + Sync));

impl Confidence for JudgeAdapter<'_> {
    fn confidence(&self, x: f64) -> f64 {
        self.0.confidence(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::HardDecision;
    use nomloc_geometry::Point;
    use nomloc_rfsim::{Environment, FloorPlan, RadioConfig, SubcarrierGrid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(12.0, 12.0))
    }

    fn reading(ap: usize, x: f64, y: f64, pdp: f64) -> PdpReading {
        PdpReading::new(ApSite::fixed(ap, Point::new(x, y)), pdp)
    }

    #[test]
    fn localize_pulls_toward_strong_pdp() {
        let server = LocalizationServer::new(square());
        let readings = vec![
            reading(1, 1.0, 1.0, 1e-5),
            reading(2, 11.0, 1.0, 1e-7),
            reading(3, 11.0, 11.0, 1e-7),
            reading(4, 1.0, 11.0, 1e-6),
        ];
        let est = server.localize(&readings).unwrap();
        // AP1's corner.
        assert!(est.position.x < 6.0 && est.position.y < 6.0, "{}", est.position);
    }

    #[test]
    fn judgement_count() {
        let server = LocalizationServer::new(square());
        let readings: Vec<PdpReading> =
            (0..4).map(|i| reading(i, i as f64, 0.0, 1e-6 * (i + 1) as f64)).collect();
        assert_eq!(server.judge(&readings).len(), 6);
    }

    #[test]
    fn empty_readings_give_area_center() {
        let server = LocalizationServer::new(square());
        let est = server.localize(&[]).unwrap();
        assert!(est.position.distance(Point::new(6.0, 6.0)) < 1e-3);
    }

    #[test]
    fn confidence_swap_changes_weights() {
        let soft = LocalizationServer::new(square());
        let hard = LocalizationServer::new(square()).with_confidence(HardDecision);
        let readings = vec![reading(0, 1.0, 1.0, 2e-6), reading(1, 11.0, 11.0, 1e-6)];
        let js_soft = soft.judge(&readings);
        let js_hard = hard.judge(&readings);
        assert!(js_soft[0].weight < 1.0);
        assert_eq!(js_hard[0].weight, 1.0);
    }

    #[test]
    fn process_end_to_end_with_simulated_csi() {
        let plan = FloorPlan::builder(square()).build();
        let env = Environment::new(plan, RadioConfig::default());
        let server = LocalizationServer::new(square());
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(17);

        let aps = [
            Point::new(1.0, 1.0),
            Point::new(11.0, 1.0),
            Point::new(11.0, 11.0),
            Point::new(1.0, 11.0),
        ];
        let object = Point::new(3.5, 4.0);
        let reports: Vec<CsiReport> = aps
            .iter()
            .enumerate()
            .map(|(i, &ap)| CsiReport {
                site: ApSite::fixed(i + 1, ap),
                burst: env.sample_csi_burst(object, ap, &grid, 30, &mut rng),
            })
            .collect();
        let est = server.process(&reports).unwrap();
        assert!(
            est.position.distance(object) < 4.0,
            "open-room estimate {} vs truth {object}",
            est.position
        );
    }

    #[test]
    fn empty_bursts_are_skipped() {
        let server = LocalizationServer::new(square());
        let reports = vec![CsiReport {
            site: ApSite::fixed(1, Point::new(1.0, 1.0)),
            burst: vec![],
        }];
        assert!(server.extract_readings(&reports).is_empty());
        // Degenerates to the area center rather than failing.
        assert!(server.process(&reports).is_ok());
    }

    #[test]
    fn debug_is_nonempty() {
        let server = LocalizationServer::new(square());
        assert!(format!("{server:?}").contains("LocalizationServer"));
    }
}
