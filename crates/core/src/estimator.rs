//! SP-based location estimation (§IV-B).
//!
//! Turns a set of proximity judgements into a position:
//!
//! 1. decompose the area of interest into convex pieces (non-convex venues
//!    like the L-shaped lobby, §IV-B-2);
//! 2. per piece, assemble judgement + boundary constraints and solve the
//!    weighted relaxation LP (Eq. 19);
//! 3. keep the pieces with minimal relaxation cost and report the center
//!    of their (merged) relaxed feasible regions.

use crate::cache::VenueCache;
use crate::constraints;
use crate::proximity::ProximityJudgement;
use nomloc_geometry::{Point, Polygon};
use nomloc_lp::center::{self, CenterMethod};
use nomloc_lp::relax::{relax_then_center, WeightedConstraint};
use nomloc_lp::simplex::SimplexWorkspace;
use nomloc_lp::LpError;
use std::fmt;

/// Errors from location estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// The area polygon decomposed into zero usable pieces.
    EmptyArea,
    /// Every convex piece failed in the LP layer (carries the last error).
    Solver(LpError),
    /// Fewer than two usable readings, so no pairwise proximity judgement
    /// can be formed (strict-mode servers refuse rather than degrade).
    InsufficientJudgements,
}

impl EstimateError {
    /// Classifies this error into the serving failure taxonomy — the
    /// 1:1 mapping used by per-cause [`crate::stats`] counters and the
    /// wire protocol's error codes.
    pub fn cause(&self) -> FailureCause {
        match self {
            EstimateError::EmptyArea => FailureCause::InvalidInput,
            EstimateError::InsufficientJudgements => FailureCause::InsufficientJudgements,
            EstimateError::Solver(LpError::Numerical) => FailureCause::LpNumerical,
            EstimateError::Solver(LpError::BadProblem) => FailureCause::InvalidInput,
            EstimateError::Solver(_) => FailureCause::LpInfeasible,
        }
    }
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::EmptyArea => write!(f, "area of interest has no convex pieces"),
            EstimateError::Solver(e) => write!(f, "all convex pieces failed to solve: {e}"),
            EstimateError::InsufficientJudgements => {
                write!(f, "fewer than two usable readings: no judgements to solve")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// The serving failure taxonomy: why a localization request could not be
/// answered at full quality. Each cause maps 1:1 onto a wire error code
/// and a per-cause [`crate::stats::CounterTotals`] counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCause {
    /// Fewer than two usable readings — no pairwise judgement possible.
    InsufficientJudgements,
    /// The relaxed LP was infeasible (or unbounded) on every piece.
    LpInfeasible,
    /// The LP solver failed numerically on every piece.
    LpNumerical,
    /// The request (or venue) input was invalid.
    InvalidInput,
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureCause::InsufficientJudgements => "insufficient-judgements",
            FailureCause::LpInfeasible => "lp-infeasible",
            FailureCause::LpNumerical => "lp-numerical",
            FailureCause::InvalidInput => "invalid-input",
        })
    }
}

/// Quality tier of a served estimate — which rung of the degradation
/// ladder produced it.
///
/// Ordered best-first: `Full < Region < Predicted < Centroid` under
/// `Ord`, so "worst quality in a batch" is a plain `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EstimateQuality {
    /// Full SP estimate from proximity judgements (the paper pipeline).
    Full,
    /// Site-constraints-only region: no judgement constraints survived,
    /// the estimate is the center of the venue boundary region.
    Region,
    /// Motion-model extrapolation from a session's tracking history —
    /// served when the request's own readings were unusable (corrupt CSI,
    /// dropped readings) but the session has fresh smoothed state. Better
    /// than [`EstimateQuality::Centroid`] (the position is informed by
    /// the client's recent trajectory), worse than a same-request solve.
    Predicted,
    /// Weighted centroid of the visited AP sites — the last rung, used
    /// when even the boundary LP is unusable or judgements cannot form.
    Centroid,
}

impl EstimateQuality {
    /// Wire encoding of the tier.
    pub fn as_u8(self) -> u8 {
        match self {
            EstimateQuality::Full => 0,
            EstimateQuality::Region => 1,
            EstimateQuality::Centroid => 2,
            EstimateQuality::Predicted => 3,
        }
    }

    /// Decodes a wire tier; `None` for unknown values.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(EstimateQuality::Full),
            1 => Some(EstimateQuality::Region),
            2 => Some(EstimateQuality::Centroid),
            3 => Some(EstimateQuality::Predicted),
            _ => None,
        }
    }

    /// `true` for any tier below [`EstimateQuality::Full`].
    pub fn is_degraded(self) -> bool {
        self != EstimateQuality::Full
    }
}

impl fmt::Display for EstimateQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EstimateQuality::Full => "full",
            EstimateQuality::Region => "region",
            EstimateQuality::Predicted => "predicted",
            EstimateQuality::Centroid => "centroid",
        })
    }
}

/// A location estimate with its diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationEstimate {
    /// Estimated object position.
    pub position: Point,
    /// Total relaxation cost `wᵀt` of the winning piece (0 ⇒ all
    /// judgements were mutually consistent).
    pub relaxation_cost: f64,
    /// Area of the relaxed feasible region, m² (granularity of the space
    /// partition — smaller is finer).
    pub region_area: f64,
    /// Number of constraints in the LP (judgements + boundary).
    pub n_constraints: usize,
    /// Number of convex pieces that tied for the minimal relaxation cost.
    pub n_winning_pieces: usize,
    /// Total simplex iterations spent across every convex piece's
    /// relaxation *and* center LPs (winners and losers alike) — solver
    /// effort for this query, aggregated by
    /// [`crate::stats::PipelineStats`].
    pub lp_iterations: u64,
    /// Center solves (one per piece) that reused the relaxation witness as
    /// a warm start and skipped simplex Phase-1.
    pub warm_start_hits: u64,
    /// Phase-1 pivots those warm starts avoided (lower-bound estimate, see
    /// [`SimplexWorkspace::phase1_pivots_saved`]).
    pub phase1_pivots_saved: u64,
    /// Which rung of the degradation ladder produced this estimate.
    pub quality: EstimateQuality,
}

/// The space-partition estimator.
///
/// # Example
///
/// ```
/// use nomloc_core::{ApSite, ProximityJudgement, SpEstimator};
/// use nomloc_geometry::{Point, Polygon};
///
/// let area = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
/// // One judgement: closer to the west AP than the east AP ⇒ west half.
/// let j = ProximityJudgement {
///     near: ApSite::fixed(0, Point::new(1.0, 5.0)),
///     far: ApSite::fixed(1, Point::new(9.0, 5.0)),
///     weight: 0.9,
/// };
/// let est = SpEstimator::default().estimate(&[j], &area)?;
/// assert!(est.position.x < 5.0);
/// # Ok::<(), nomloc_core::estimator::EstimateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpEstimator {
    /// How the feasible region is reduced to a point.
    pub center_method: CenterMethod,
}

impl SpEstimator {
    /// Creates an estimator with the default (Chebyshev) center.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the center method.
    pub fn with_center_method(mut self, method: CenterMethod) -> Self {
        self.center_method = method;
        self
    }

    /// Estimates the object position inside `area` from `judgements`.
    ///
    /// With no judgements the estimate degenerates to the area's "center"
    /// (per the configured method) — maximal uncertainty.
    ///
    /// Builds a throwaway [`VenueCache`] and delegates to
    /// [`SpEstimator::estimate_cached`]; serving loops should build the
    /// cache once and call the cached variant directly.
    ///
    /// # Errors
    ///
    /// See [`EstimateError`].
    pub fn estimate(
        &self,
        judgements: &[ProximityJudgement],
        area: &Polygon,
    ) -> Result<LocationEstimate, EstimateError> {
        self.estimate_cached(judgements, &VenueCache::new(area.clone()))
    }

    /// Estimates the object position from `judgements` against precomputed
    /// venue geometry.
    ///
    /// Bit-identical to [`SpEstimator::estimate`] on the cache's area: per
    /// piece the constraint vector is the judgement constraints followed by
    /// the cached boundary constraints — the exact floats, in the exact
    /// order, that [`constraints::assemble`] produces.
    ///
    /// # Errors
    ///
    /// See [`EstimateError`].
    pub fn estimate_cached(
        &self,
        judgements: &[ProximityJudgement],
        cache: &VenueCache,
    ) -> Result<LocationEstimate, EstimateError> {
        SimplexWorkspace::with(|ws| self.estimate_in(ws, judgements, cache))
    }

    /// [`SpEstimator::estimate_cached`] against an explicit
    /// [`SimplexWorkspace`] — the batched serving path passes each worker
    /// thread's pooled workspace so consecutive queries reuse the same
    /// tableau allocations. Workspace state never influences results.
    ///
    /// # Errors
    ///
    /// See [`EstimateError`].
    pub fn estimate_in(
        &self,
        ws: &mut SimplexWorkspace,
        judgements: &[ProximityJudgement],
        cache: &VenueCache,
    ) -> Result<LocationEstimate, EstimateError> {
        let pieces = cache.pieces();
        if pieces.is_empty() {
            return Err(EstimateError::EmptyArea);
        }

        struct PieceSolution {
            cost: f64,
            center: Point,
            region_area: f64,
            n_constraints: usize,
        }

        // Judgement constraints are venue-independent: build them once and
        // share across pieces; `cs` is reused as the per-piece scratch.
        let judgement_cs = constraints::judgement_constraints(judgements);
        let mut cs: Vec<WeightedConstraint> = Vec::new();

        let mut solutions: Vec<PieceSolution> = Vec::with_capacity(pieces.len());
        let mut last_err = LpError::Infeasible;
        let mut lp_iterations: u64 = 0;
        let mut warm_start_hits: u64 = 0;
        let mut phase1_pivots_saved: u64 = 0;
        for cached_piece in pieces {
            let piece = cached_piece.polygon();
            cs.clear();
            cs.extend_from_slice(&judgement_cs);
            cs.extend_from_slice(cached_piece.boundary_constraints());
            let n_constraints = cs.len();
            // Relax, then center the kept system — per the paper's reading
            // of Eq. 19: constraints with tᵢ = 0 are *retained*,
            // constraints with tᵢ > 0 were judged wrong and are
            // *sacrificed* (dropped), leaving a non-degenerate cell whose
            // center is the estimate. The center LP is warm-started at the
            // relaxation witness over the piece's cached edge half-planes.
            let rc = match relax_then_center(
                ws,
                &cs,
                judgements.len(),
                piece,
                cached_piece.edge_halfplanes(),
                self.center_method,
            ) {
                Ok(rc) => rc,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            lp_iterations += rc.relaxation.lp_iterations() + rc.center_iterations;
            warm_start_hits += u64::from(rc.warm_start_hit);
            phase1_pivots_saved += rc.phase1_pivots_saved;
            let (center, region_area) = match center::feasible_region(&rc.kept, piece) {
                Some(region) => {
                    let c = rc.center.unwrap_or_else(|| region.centroid());
                    (c, region.area())
                }
                // Degenerate (zero-area) region: fall back to the LP
                // witness clamped into the piece.
                None => (piece.clamp_point(rc.relaxation.witness()), 0.0),
            };
            solutions.push(PieceSolution {
                cost: rc.relaxation.cost(),
                center,
                region_area,
                n_constraints,
            });
        }

        if solutions.is_empty() {
            return Err(EstimateError::Solver(last_err));
        }

        // Keep the minimal-cost pieces (ties within tolerance) and merge
        // their centers weighted by feasible area.
        let min_cost = solutions
            .iter()
            .map(|s| s.cost)
            .fold(f64::INFINITY, f64::min);
        let winners: Vec<&PieceSolution> = solutions
            .iter()
            .filter(|s| s.cost <= min_cost + 1e-6 * (1.0 + min_cost))
            .collect();
        let total_area: f64 = winners.iter().map(|s| s.region_area).sum();
        let position = if total_area > 1e-12 {
            let mut x = 0.0;
            let mut y = 0.0;
            for s in &winners {
                x += s.center.x * s.region_area;
                y += s.center.y * s.region_area;
            }
            Point::new(x / total_area, y / total_area)
        } else {
            // All-degenerate: average the witnesses.
            let n = winners.len() as f64;
            Point::new(
                winners.iter().map(|s| s.center.x).sum::<f64>() / n,
                winners.iter().map(|s| s.center.y).sum::<f64>() / n,
            )
        };

        Ok(LocationEstimate {
            position,
            relaxation_cost: min_cost,
            region_area: total_area,
            n_constraints: winners.iter().map(|s| s.n_constraints).max().unwrap_or(0),
            n_winning_pieces: winners.len(),
            lp_iterations,
            warm_start_hits,
            phase1_pivots_saved,
            quality: if judgements.is_empty() {
                EstimateQuality::Region
            } else {
                EstimateQuality::Full
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proximity::ApSite;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(20.0, 8.0),
            Point::new(8.0, 8.0),
            Point::new(8.0, 15.0),
            Point::new(0.0, 15.0),
        ])
        .unwrap()
    }

    fn judgement(near: Point, far: Point, w: f64) -> ProximityJudgement {
        ProximityJudgement {
            near: ApSite::fixed(0, near),
            far: ApSite::fixed(1, far),
            weight: w,
        }
    }

    /// Judgements consistent with an object at `q` among the given APs.
    fn truthful_judgements(q: Point, aps: &[Point]) -> Vec<ProximityJudgement> {
        let mut out = Vec::new();
        for i in 0..aps.len() {
            for j in (i + 1)..aps.len() {
                let (near, far) = if q.distance_sq(aps[i]) <= q.distance_sq(aps[j]) {
                    (aps[i], aps[j])
                } else {
                    (aps[j], aps[i])
                };
                out.push(judgement(near, far, 0.9));
            }
        }
        out
    }

    #[test]
    fn no_judgements_returns_area_center() {
        let est = SpEstimator::new().estimate(&[], &square()).unwrap();
        assert!(est.position.distance(Point::new(5.0, 5.0)) < 1e-4);
        assert_eq!(est.relaxation_cost, 0.0);
        assert!((est.region_area - 100.0).abs() < 1e-6);
    }

    #[test]
    fn single_judgement_halves_region() {
        let j = judgement(Point::new(1.0, 5.0), Point::new(9.0, 5.0), 0.9);
        let est = SpEstimator::new().estimate(&[j], &square()).unwrap();
        assert!(est.position.x < 5.0);
        assert!((est.region_area - 50.0).abs() < 1e-6);
        assert!(est.relaxation_cost < 1e-9);
        assert_eq!(est.n_constraints, 5);
    }

    #[test]
    fn consistent_judgements_localize_near_truth() {
        let aps = [
            Point::new(0.5, 0.5),
            Point::new(9.5, 0.5),
            Point::new(9.5, 9.5),
            Point::new(0.5, 9.5),
            Point::new(5.0, 0.5),
            Point::new(5.0, 9.5),
        ];
        for q in [
            Point::new(2.0, 3.0),
            Point::new(7.5, 6.0),
            Point::new(5.0, 5.0),
        ] {
            let js = truthful_judgements(q, &aps);
            let est = SpEstimator::new().estimate(&js, &square()).unwrap();
            assert!(
                est.position.distance(q) < 3.0,
                "estimate {} too far from truth {q}",
                est.position
            );
            assert!(est.relaxation_cost < 1e-6, "truthful set should be exact");
        }
    }

    #[test]
    fn more_aps_give_finer_region() {
        let q = Point::new(3.0, 4.0);
        let few = [Point::new(0.5, 0.5), Point::new(9.5, 9.5)];
        let many = [
            Point::new(0.5, 0.5),
            Point::new(9.5, 0.5),
            Point::new(9.5, 9.5),
            Point::new(0.5, 9.5),
            Point::new(5.0, 5.0),
            Point::new(2.0, 8.0),
        ];
        let est_few = SpEstimator::new()
            .estimate(&truthful_judgements(q, &few), &square())
            .unwrap();
        let est_many = SpEstimator::new()
            .estimate(&truthful_judgements(q, &many), &square())
            .unwrap();
        assert!(
            est_many.region_area < est_few.region_area,
            "downscoping: {} ≥ {}",
            est_many.region_area,
            est_few.region_area
        );
    }

    #[test]
    fn opposite_judgements_leave_degenerate_but_feasible_set() {
        // "Closer to a than b" and "closer to b than a" as *closed*
        // half-planes still share the bisector line: feasible with zero
        // area, no relaxation charged, estimate on the bisector.
        let a = Point::new(1.0, 5.0);
        let b = Point::new(9.0, 5.0);
        let js = [judgement(a, b, 0.95), judgement(b, a, 0.55)];
        let est = SpEstimator::new().estimate(&js, &square()).unwrap();
        assert!(est.relaxation_cost < 1e-6);
        assert!((est.position.x - 5.0).abs() < 0.1, "{}", est.position);
    }

    #[test]
    fn contradictory_judgements_are_relaxed() {
        // x ≤ 5 (confident, bisector of 1↔9) vs x ≥ 6 (doubtful, bisector
        // of 9↔3): genuinely disjoint, so the LP must pay.
        let js = [
            judgement(Point::new(1.0, 5.0), Point::new(9.0, 5.0), 0.95),
            judgement(Point::new(9.0, 5.0), Point::new(3.0, 5.0), 0.55),
        ];
        let est = SpEstimator::new().estimate(&js, &square()).unwrap();
        assert!(est.relaxation_cost > 0.0);
        assert!(
            est.position.x < 5.0 + 1e-6,
            "confident side wins: {}",
            est.position
        );
    }

    #[test]
    fn estimate_always_inside_area() {
        // Judgements dragging the solution toward a far corner can't push
        // it out of the boundary.
        let js = [
            judgement(Point::new(100.0, 100.0), Point::new(-50.0, -50.0), 0.99),
            judgement(Point::new(120.0, 80.0), Point::new(-60.0, -40.0), 0.99),
        ];
        let est = SpEstimator::new().estimate(&js, &square()).unwrap();
        assert!(
            square().contains(est.position) || square().distance_to_boundary(est.position) < 1e-6,
            "{} escaped",
            est.position
        );
    }

    #[test]
    fn l_shape_decomposes_and_solves() {
        let area = l_shape();
        let aps = [
            Point::new(1.0, 1.0),
            Point::new(19.0, 1.0),
            Point::new(1.0, 14.0),
            Point::new(19.0, 7.0),
        ];
        for q in [
            Point::new(3.0, 3.0),
            Point::new(15.0, 4.0),
            Point::new(4.0, 12.0),
        ] {
            let js = truthful_judgements(q, &aps);
            let est = SpEstimator::new().estimate(&js, &area).unwrap();
            assert!(
                area.contains(est.position) || area.distance_to_boundary(est.position) < 1e-6,
                "estimate {} outside the L at truth {q}",
                est.position
            );
            assert!(est.position.distance(q) < 6.0);
        }
    }

    #[test]
    fn l_shape_notch_never_wins() {
        // The notch (x > 8, y > 8) is outside the L; truthful judgements
        // for a point near the notch corner must still land inside.
        let area = l_shape();
        let aps = [
            Point::new(1.0, 1.0),
            Point::new(19.0, 1.0),
            Point::new(1.0, 14.0),
        ];
        let q = Point::new(7.0, 7.0);
        let est = SpEstimator::new()
            .estimate(&truthful_judgements(q, &aps), &area)
            .unwrap();
        assert!(area.contains(est.position) || area.distance_to_boundary(est.position) < 1e-6);
    }

    #[test]
    fn center_methods_all_work() {
        let q = Point::new(4.0, 6.0);
        let aps = [
            Point::new(0.5, 0.5),
            Point::new(9.5, 0.5),
            Point::new(9.5, 9.5),
            Point::new(0.5, 9.5),
        ];
        let js = truthful_judgements(q, &aps);
        for m in [
            CenterMethod::Chebyshev,
            CenterMethod::Analytic,
            CenterMethod::Centroid,
        ] {
            let est = SpEstimator::new()
                .with_center_method(m)
                .estimate(&js, &square())
                .unwrap();
            assert!(est.position.distance(q) < 4.0, "{m:?} → {}", est.position);
        }
    }

    #[test]
    fn diagnostics_populated() {
        let j = judgement(Point::new(1.0, 5.0), Point::new(9.0, 5.0), 0.9);
        let est = SpEstimator::new().estimate(&[j], &square()).unwrap();
        assert_eq!(est.n_winning_pieces, 1);
        assert!(est.n_constraints >= 5);
        assert!(est.lp_iterations > 0);
    }

    #[test]
    fn cached_estimate_is_bit_identical() {
        for area in [square(), l_shape()] {
            let cache = VenueCache::new(area.clone());
            let aps = [
                Point::new(1.0, 1.0),
                Point::new(7.5, 1.0),
                Point::new(1.0, 7.0),
            ];
            for q in [Point::new(2.0, 3.0), Point::new(6.0, 5.0)] {
                let js = truthful_judgements(q, &aps);
                let direct = SpEstimator::new().estimate(&js, &area).unwrap();
                let cached = SpEstimator::new().estimate_cached(&js, &cache).unwrap();
                // Full struct equality — positions, costs, areas, counts —
                // with no tolerance: the cached path must be the same
                // computation.
                assert_eq!(direct, cached);
            }
        }
    }

    #[test]
    fn quality_tracks_judgement_presence() {
        let est = SpEstimator::new().estimate(&[], &square()).unwrap();
        assert_eq!(est.quality, EstimateQuality::Region);
        assert!(est.quality.is_degraded());
        let j = judgement(Point::new(1.0, 5.0), Point::new(9.0, 5.0), 0.9);
        let est = SpEstimator::new().estimate(&[j], &square()).unwrap();
        assert_eq!(est.quality, EstimateQuality::Full);
        assert!(!est.quality.is_degraded());
    }

    #[test]
    fn quality_wire_round_trip() {
        for q in [
            EstimateQuality::Full,
            EstimateQuality::Region,
            EstimateQuality::Predicted,
            EstimateQuality::Centroid,
        ] {
            assert_eq!(EstimateQuality::from_u8(q.as_u8()), Some(q));
        }
        assert_eq!(EstimateQuality::from_u8(4), None);
        assert!(EstimateQuality::Full < EstimateQuality::Region);
        assert!(EstimateQuality::Region < EstimateQuality::Predicted);
        assert!(EstimateQuality::Predicted < EstimateQuality::Centroid);
    }

    #[test]
    fn error_causes_classify_one_to_one() {
        use crate::estimator::FailureCause as C;
        assert_eq!(EstimateError::EmptyArea.cause(), C::InvalidInput);
        assert_eq!(
            EstimateError::InsufficientJudgements.cause(),
            C::InsufficientJudgements
        );
        assert_eq!(
            EstimateError::Solver(LpError::Infeasible).cause(),
            C::LpInfeasible
        );
        assert_eq!(
            EstimateError::Solver(LpError::Unbounded).cause(),
            C::LpInfeasible
        );
        assert_eq!(
            EstimateError::Solver(LpError::Numerical).cause(),
            C::LpNumerical
        );
        assert_eq!(
            EstimateError::Solver(LpError::BadProblem).cause(),
            C::InvalidInput
        );
    }

    #[test]
    fn cached_estimate_empty_cache_errors() {
        let cache = VenueCache::new(square());
        // A cache can only be empty via a degenerate polygon; simulate by
        // checking the convex path works and the API contract holds.
        assert!(SpEstimator::new().estimate_cached(&[], &cache).is_ok());
    }
}
