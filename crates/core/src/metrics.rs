//! Evaluation metrics (§V-A): accuracy CDFs and spatial localizability
//! variance.

use nomloc_dsp::stats::{self, Ecdf};
use nomloc_geometry::Point;

/// Localization outcomes collected at one ground-truth site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteOutcome {
    /// The ground-truth object position.
    pub site: Point,
    /// Localization errors of the individual trials, metres.
    pub errors: Vec<f64>,
}

impl SiteOutcome {
    /// Creates an outcome record.
    ///
    /// # Panics
    ///
    /// Panics when `errors` is empty or contains non-finite values.
    pub fn new(site: Point, errors: Vec<f64>) -> Self {
        assert!(!errors.is_empty(), "site outcome needs at least one trial");
        assert!(
            errors.iter().all(|e| e.is_finite() && *e >= 0.0),
            "errors must be finite and non-negative"
        );
        SiteOutcome { site, errors }
    }

    /// Mean localization error at this site, metres (the paper's
    /// `e(x, y)`).
    pub fn mean_error(&self) -> f64 {
        stats::mean(&self.errors).expect("non-empty by construction")
    }

    /// Number of trials.
    pub fn n_trials(&self) -> usize {
        self.errors.len()
    }
}

/// Per-site mean errors of a campaign, in site order.
pub fn site_mean_errors(outcomes: &[SiteOutcome]) -> Vec<f64> {
    outcomes.iter().map(SiteOutcome::mean_error).collect()
}

/// Spatial localizability variance across sites (Eq. 22).
///
/// Returns `None` for empty input.
pub fn slv(outcomes: &[SiteOutcome]) -> Option<f64> {
    stats::slv(&site_mean_errors(outcomes))
}

/// Empirical CDF of per-site mean errors — the accuracy curves of
/// Fig. 9/10. Returns `None` for empty input.
pub fn error_cdf(outcomes: &[SiteOutcome]) -> Option<Ecdf> {
    Ecdf::new(site_mean_errors(outcomes))
}

/// Overall mean error across sites (mean of per-site means, matching the
/// paper's per-site aggregation). Returns `None` for empty input.
pub fn mean_error(outcomes: &[SiteOutcome]) -> Option<f64> {
    stats::mean(&site_mean_errors(outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(x: f64, errors: &[f64]) -> SiteOutcome {
        SiteOutcome::new(Point::new(x, 0.0), errors.to_vec())
    }

    #[test]
    fn mean_error_per_site() {
        let o = outcome(0.0, &[1.0, 2.0, 3.0]);
        assert_eq!(o.mean_error(), 2.0);
        assert_eq!(o.n_trials(), 3);
    }

    #[test]
    fn slv_matches_hand_computation() {
        let outcomes = vec![
            outcome(0.0, &[1.0]),
            outcome(1.0, &[2.0]),
            outcome(2.0, &[3.0]),
        ];
        // Means 1, 2, 3 → variance 2/3.
        assert!((slv(&outcomes).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn slv_zero_for_uniform_accuracy() {
        let outcomes = vec![outcome(0.0, &[1.5, 1.5]), outcome(1.0, &[1.0, 2.0])];
        // Both site means are 1.5 → zero spatial variance even though the
        // per-trial errors differ.
        assert_eq!(slv(&outcomes).unwrap(), 0.0);
    }

    #[test]
    fn cdf_over_site_means() {
        let outcomes = vec![
            outcome(0.0, &[1.0]),
            outcome(1.0, &[3.0]),
            outcome(2.0, &[2.0]),
        ];
        let cdf = error_cdf(&outcomes).unwrap();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.eval(1.0), 1.0 / 3.0);
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(mean_error(&outcomes), Some(2.0));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(slv(&[]), None);
        assert!(error_cdf(&[]).is_none());
        assert_eq!(mean_error(&[]), None);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn outcome_rejects_empty() {
        let _ = SiteOutcome::new(Point::ORIGIN, vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn outcome_rejects_nan() {
        let _ = SiteOutcome::new(Point::ORIGIN, vec![f64::NAN]);
    }
}
