//! The paper's experimental venues (Fig. 6).
//!
//! Two scenarios drive the whole evaluation:
//!
//! * **Lab** (Fig. 6(a)) — a cluttered academic laboratory "with
//!   substantial equipments (i.e., PCs and servers) and office facilities":
//!   modelled as a 12 × 8 m room with cubicle rows, desks, and metal racks.
//!   Four APs; AP 1 is nomadic over sites {home, P1, P2, P3}. Ten test
//!   sites.
//! * **Lobby** (Fig. 6(b)) — a "larger, more open" L-shaped lobby:
//!   modelled as an 18 × 14 m L with a few pillars and benches. Four APs
//!   (sparser deployment); AP 1 nomadic over {home, P1, P2, P3}. Twelve
//!   test sites.
//!
//! Exact coordinates are not published; these layouts reproduce the
//! *structure* (venue shape, AP counts, site counts, clutter density,
//! nomadic site sets), which is what the evaluation's trends depend on.

use crate::server::CsiReport;
use crate::ApSite;
use nomloc_geometry::{Point, Polygon, Segment};
use nomloc_rfsim::{Environment, FloorPlan, Material, RadioConfig, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One experimental venue: floor plan, AP deployment, and test sites.
///
/// # Example
///
/// ```
/// use nomloc_core::scenario::Venue;
///
/// let lab = Venue::lab();
/// assert_eq!(lab.n_test_sites(), 10);
/// // Four APs total: the nomadic AP's home plus three static ones.
/// assert_eq!(lab.static_deployment().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Venue {
    /// Venue name ("Lab" / "Lobby").
    pub name: &'static str,
    /// Floor plan with clutter.
    pub plan: FloorPlan,
    /// Fixed positions of the static APs (AP 2…AP n).
    pub static_aps: Vec<Point>,
    /// The nomadic AP's home position (where it sits in the *static*
    /// baseline deployment).
    pub nomadic_home: Point,
    /// The sites the nomadic AP random-walks among (the paper's
    /// {P1, P2, P3}); its home is implicitly part of the walk.
    pub nomadic_sites: Vec<Point>,
    /// Ground-truth object test sites (the paper's measurement sites).
    pub test_sites: Vec<Point>,
    /// Radio parameters for the venue.
    pub radio: RadioConfig,
}

impl Venue {
    /// The cluttered laboratory of Fig. 6(a).
    pub fn lab() -> Venue {
        let boundary = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(12.0, 8.0));
        let plan = FloorPlan::builder(boundary)
            // Two cubicle rows in the west half.
            .rect_obstacle(
                Point::new(2.5, 2.0),
                Point::new(5.0, 2.8),
                Material::CUBICLE,
            )
            .rect_obstacle(
                Point::new(2.5, 4.2),
                Point::new(5.0, 5.0),
                Material::CUBICLE,
            )
            // Desk cluster in the east half.
            .rect_obstacle(Point::new(7.0, 4.5), Point::new(9.4, 5.3), Material::WOOD)
            .rect_obstacle(Point::new(7.0, 6.4), Point::new(9.4, 7.2), Material::WOOD)
            // Server racks: near-opaque metal.
            .rect_obstacle(Point::new(5.8, 0.5), Point::new(6.6, 2.0), Material::METAL)
            .rect_obstacle(
                Point::new(10.0, 4.0),
                Point::new(10.8, 5.5),
                Material::METAL,
            )
            // A drywall partition by the entrance.
            .wall(
                Segment::new(Point::new(0.0, 5.8), Point::new(2.0, 5.8)),
                Material::DRYWALL,
            )
            .build();
        Venue {
            name: "Lab",
            plan,
            static_aps: vec![
                Point::new(11.2, 0.8),
                Point::new(11.2, 7.2),
                Point::new(0.8, 7.2),
            ],
            nomadic_home: Point::new(0.8, 0.8),
            nomadic_sites: vec![
                Point::new(4.0, 3.5),
                Point::new(6.5, 5.6),
                Point::new(9.0, 2.5),
            ],
            test_sites: vec![
                Point::new(2.0, 1.4),
                Point::new(4.2, 1.4),
                Point::new(8.2, 1.2),
                Point::new(10.6, 2.6),
                Point::new(1.4, 3.4),
                Point::new(6.0, 3.5),
                Point::new(9.2, 3.6),
                Point::new(2.0, 6.6),
                Point::new(6.0, 6.4),
                Point::new(10.4, 6.6),
            ],
            radio: RadioConfig::default(),
        }
    }

    /// The open L-shaped lobby of Fig. 6(b).
    pub fn lobby() -> Venue {
        let boundary = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(18.0, 0.0),
            Point::new(18.0, 7.0),
            Point::new(7.0, 7.0),
            Point::new(7.0, 14.0),
            Point::new(0.0, 14.0),
        ])
        .expect("lobby outline is a valid polygon");
        let plan = FloorPlan::builder(boundary)
            // Structural pillars.
            .rect_obstacle(
                Point::new(8.0, 3.0),
                Point::new(8.6, 3.6),
                Material::CONCRETE,
            )
            .rect_obstacle(
                Point::new(12.6, 3.0),
                Point::new(13.2, 3.6),
                Material::CONCRETE,
            )
            // Benches.
            .rect_obstacle(Point::new(2.0, 10.6), Point::new(4.0, 11.2), Material::WOOD)
            .rect_obstacle(Point::new(14.8, 5.0), Point::new(16.8, 5.6), Material::WOOD)
            .build();
        Venue {
            name: "Lobby",
            plan,
            static_aps: vec![
                Point::new(17.2, 0.8),
                Point::new(17.2, 6.2),
                Point::new(0.8, 13.2),
            ],
            nomadic_home: Point::new(0.8, 0.8),
            nomadic_sites: vec![
                Point::new(5.0, 3.0),
                Point::new(10.0, 5.0),
                Point::new(3.0, 9.0),
            ],
            test_sites: vec![
                Point::new(2.0, 2.0),
                Point::new(5.0, 1.5),
                Point::new(8.0, 1.5),
                Point::new(11.0, 2.5),
                Point::new(14.0, 1.5),
                Point::new(16.4, 3.6),
                Point::new(13.0, 5.8),
                Point::new(9.5, 6.0),
                Point::new(4.0, 5.0),
                Point::new(1.5, 7.5),
                Point::new(5.0, 9.5),
                Point::new(3.0, 12.5),
            ],
            radio: RadioConfig {
                // Long sight-lines in the open lobby: APs run at the usual
                // "full power" setting of deployed hot-spot hardware.
                tx_power_dbm: 18.0,
                ..RadioConfig::default()
            },
        }
    }

    /// A marketplace-scale venue beyond the paper's testbed: a 30 × 22 m
    /// cross-shaped mall wing with six APs and five public nomadic sites.
    /// Used by the at-scale experiments to exercise the pipeline at
    /// roughly 4× the Lab's area and C(6+5, 2) = 55 constraints per round.
    pub fn mall() -> Venue {
        let boundary = Polygon::new(vec![
            Point::new(8.0, 0.0),
            Point::new(22.0, 0.0),
            Point::new(22.0, 7.0),
            Point::new(30.0, 7.0),
            Point::new(30.0, 15.0),
            Point::new(22.0, 15.0),
            Point::new(22.0, 22.0),
            Point::new(8.0, 22.0),
            Point::new(8.0, 15.0),
            Point::new(0.0, 15.0),
            Point::new(0.0, 7.0),
            Point::new(8.0, 7.0),
        ])
        .expect("mall outline is a valid polygon");
        let plan = FloorPlan::builder(boundary)
            // Kiosks in the atrium.
            .rect_obstacle(
                Point::new(13.5, 9.5),
                Point::new(16.5, 12.5),
                Material::WOOD,
            )
            // Pillars at the wing mouths.
            .rect_obstacle(
                Point::new(9.0, 8.0),
                Point::new(9.7, 8.7),
                Material::CONCRETE,
            )
            .rect_obstacle(
                Point::new(20.3, 13.3),
                Point::new(21.0, 14.0),
                Material::CONCRETE,
            )
            // Vending machines.
            .rect_obstacle(
                Point::new(27.0, 8.0),
                Point::new(28.2, 9.2),
                Material::METAL,
            )
            .rect_obstacle(
                Point::new(9.0, 19.0),
                Point::new(10.2, 20.2),
                Material::METAL,
            )
            .build();
        Venue {
            name: "Mall",
            plan,
            static_aps: vec![
                Point::new(21.0, 1.0),
                Point::new(29.0, 8.0),
                Point::new(29.0, 14.0),
                Point::new(21.0, 21.0),
                Point::new(1.0, 8.0),
            ],
            nomadic_home: Point::new(9.0, 1.0),
            nomadic_sites: vec![
                Point::new(15.0, 4.0),
                Point::new(15.0, 18.0),
                Point::new(4.0, 11.0),
                Point::new(25.0, 11.0),
                Point::new(15.0, 8.2),
            ],
            test_sites: vec![
                Point::new(10.0, 3.0),
                Point::new(20.0, 3.0),
                Point::new(15.0, 6.5),
                Point::new(2.5, 9.0),
                Point::new(5.5, 13.0),
                Point::new(11.0, 11.0),
                Point::new(19.0, 9.0),
                Point::new(24.0, 8.5),
                Point::new(27.5, 13.0),
                Point::new(12.0, 16.0),
                Point::new(18.5, 19.5),
                Point::new(10.0, 20.8),
                Point::new(20.0, 16.5),
                Point::new(15.0, 13.5),
            ],
            radio: RadioConfig {
                tx_power_dbm: 18.0,
                ..RadioConfig::default()
            },
        }
    }

    /// All AP positions of the *static* baseline deployment: the nomadic
    /// AP parked at home plus the static APs.
    pub fn static_deployment(&self) -> Vec<Point> {
        let mut v = vec![self.nomadic_home];
        v.extend_from_slice(&self.static_aps);
        v
    }

    /// The nomadic AP's full site set: home plus {P1…}.
    pub fn nomadic_site_set(&self) -> Vec<Point> {
        let mut v = vec![self.nomadic_home];
        v.extend_from_slice(&self.nomadic_sites);
        v
    }

    /// Number of test sites.
    pub fn n_test_sites(&self) -> usize {
        self.test_sites.len()
    }

    /// Copy of the venue scaled by `factor` about the boundary's
    /// bounding-box corner — same layout, different physical size. Used by
    /// the venue-scale ablation: calibration-free SP accuracy tracks the
    /// partition-cell size, which grows linearly with the venue.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not strictly positive and finite.
    pub fn scaled(&self, factor: f64) -> Venue {
        let (origin, _) = self.plan.boundary().bounding_box();
        let s = |p: Point| origin + (p - origin) * factor;
        Venue {
            name: self.name,
            plan: self.plan.scaled(origin, factor),
            static_aps: self.static_aps.iter().map(|&p| s(p)).collect(),
            nomadic_home: s(self.nomadic_home),
            nomadic_sites: self.nomadic_sites.iter().map(|&p| s(p)).collect(),
            test_sites: self.test_sites.iter().map(|&p| s(p)).collect(),
            radio: self.radio.clone(),
        }
    }
}

/// Deterministically picks a fleet venue for slot `i`: the three built-in
/// layouts rotated round-robin and scaled through five distinct size
/// factors, so any number of "different" venues can be onboarded without
/// hand-authoring floor plans. Slot 0 is the unscaled Lab — the same venue
/// a single-venue daemon serves by default.
pub fn fleet_venue(i: u64) -> Venue {
    let base = match i % 3 {
        0 => Venue::lab(),
        1 => Venue::lobby(),
        _ => Venue::mall(),
    };
    let factor = 1.0 + 0.1 * ((i / 3) % 5) as f64;
    if factor == 1.0 {
        base
    } else {
        base.scaled(factor)
    }
}

/// Splitmix-derived per-request RNG: the same index-keyed seed-derivation
/// discipline `Campaign::parallel` uses per site, so a workload is
/// identical no matter how the batch is scheduled — or which process (or
/// side of a socket) generates it.
pub fn request_rng(seed: u64, request: usize) -> StdRng {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(request as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Per-venue synthetic-workload generator: owns the ray-traced
/// [`Environment`] (the expensive part) so multi-venue callers can build
/// one per distinct venue and draw requests à la carte. The CLI, the
/// serving benches, and the loopback tests all synthesize traffic through
/// this one builder — previously the CLI and bench carried drifting copies.
pub struct WorkloadBuilder {
    env: Environment,
    aps: Vec<Point>,
    grid: SubcarrierGrid,
    test_sites: Vec<Point>,
}

impl WorkloadBuilder {
    /// Prepares the venue's environment and static AP deployment.
    pub fn new(venue: &Venue) -> Self {
        WorkloadBuilder {
            env: Environment::new(venue.plan.clone(), RadioConfig::default()),
            aps: venue.static_deployment(),
            grid: SubcarrierGrid::intel5300(),
            test_sites: venue.test_sites.clone(),
        }
    }

    /// Synthesizes request `r` of a `(seed, packets)` workload: the
    /// ground-truth position (test sites round-robin) and one CSI report
    /// per static AP. Deterministic in `(venue, r, packets, seed)` via
    /// [`request_rng`] — independent of which other requests are drawn.
    pub fn request(&self, r: usize, packets: usize, seed: u64) -> (Point, Vec<CsiReport>) {
        let object = self.test_sites[r % self.test_sites.len()];
        let mut rng = request_rng(seed, r);
        let reports = self
            .aps
            .iter()
            .enumerate()
            .map(|(i, &ap)| CsiReport {
                site: ApSite::fixed(i + 1, ap),
                burst: self
                    .env
                    .sample_csi_burst(object, ap, &self.grid, packets, &mut rng),
            })
            .collect();
        (object, reports)
    }
}

/// Builds the synthetic request workload `serve`, `loadgen`, and the
/// serving benches share: one request per venue test site (round-robin),
/// each carrying one CSI report per static AP. Returns the ground-truth
/// positions alongside the batch.
///
/// Deterministic in `(venue, requests, packets, seed)`: every request
/// derives its own RNG via [`request_rng`], so the workload is identical
/// no matter which process — or which side of a socket — generates it.
pub fn synthetic_workload(
    venue: &Venue,
    requests: usize,
    packets: usize,
    seed: u64,
) -> (Vec<Point>, Vec<Vec<CsiReport>>) {
    let builder = WorkloadBuilder::new(venue);
    let mut truths = Vec::with_capacity(requests);
    let mut batch = Vec::with_capacity(requests);
    for r in 0..requests {
        let (truth, reports) = builder.request(r, packets, seed);
        truths.push(truth);
        batch.push(reports);
    }
    (truths, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_venue(v: &Venue) {
        // Every AP, nomadic site and test site is placeable (inside the
        // boundary, outside obstacles).
        for p in v
            .static_aps
            .iter()
            .chain(v.nomadic_sites.iter())
            .chain(v.test_sites.iter())
            .chain(std::iter::once(&v.nomadic_home))
        {
            assert!(
                v.plan.is_placeable(*p),
                "{} has unplaceable point {p}",
                v.name
            );
        }
        // Distinct test sites.
        for i in 0..v.test_sites.len() {
            for j in (i + 1)..v.test_sites.len() {
                assert!(v.test_sites[i].distance(v.test_sites[j]) > 0.5);
            }
        }
    }

    #[test]
    fn lab_layout_sane() {
        let v = Venue::lab();
        check_venue(&v);
        assert_eq!(v.n_test_sites(), 10, "paper uses 10 Lab sites");
        assert_eq!(v.static_deployment().len(), 4, "paper uses 4 APs");
        assert_eq!(v.nomadic_site_set().len(), 4, "home + P1..P3");
        assert!(v.plan.boundary().is_convex());
        assert!(!v.plan.obstacles().is_empty(), "the Lab is cluttered");
    }

    #[test]
    fn lobby_layout_sane() {
        let v = Venue::lobby();
        check_venue(&v);
        assert_eq!(v.n_test_sites(), 12, "paper uses 12 Lobby sites");
        assert_eq!(v.static_deployment().len(), 4);
        assert!(!v.plan.boundary().is_convex(), "the Lobby is L-shaped");
        // Lobby is larger than the Lab.
        assert!(v.plan.boundary().area() > Venue::lab().plan.boundary().area());
        // And sparser: fewer obstacles per square metre.
        let lab = Venue::lab();
        let lab_density = lab.plan.obstacles().len() as f64 / lab.plan.boundary().area();
        let lobby_density = v.plan.obstacles().len() as f64 / v.plan.boundary().area();
        assert!(lobby_density < lab_density);
    }

    #[test]
    fn mall_layout_sane() {
        let v = Venue::mall();
        check_venue(&v);
        assert_eq!(v.static_deployment().len(), 6);
        assert_eq!(v.nomadic_site_set().len(), 6);
        assert_eq!(v.n_test_sites(), 14);
        assert!(!v.plan.boundary().is_convex(), "cross shape is non-convex");
        assert!(v.plan.boundary().area() > 3.0 * Venue::lab().plan.boundary().area());
    }

    #[test]
    fn scaled_venue_preserves_structure() {
        let big = Venue::lab().scaled(1.5);
        check_venue(&big);
        assert!((big.plan.boundary().area() - 96.0 * 2.25).abs() < 1e-6);
        assert_eq!(big.n_test_sites(), 10);
    }

    #[test]
    fn lab_has_nlos_sites() {
        // The clutter must actually block some object–AP links, otherwise
        // the venue cannot exhibit localizability variance.
        let v = Venue::lab();
        let aps = v.static_deployment();
        let mut nlos = 0;
        for s in &v.test_sites {
            for ap in &aps {
                if !v.plan.is_los(*s, *ap) {
                    nlos += 1;
                }
            }
        }
        assert!(nlos >= 5, "only {nlos} NLOS links in the Lab");
    }

    #[test]
    fn fleet_venues_rotate_and_scale() {
        assert_eq!(fleet_venue(0).name, "Lab");
        assert_eq!(fleet_venue(1).name, "Lobby");
        assert_eq!(fleet_venue(2).name, "Mall");
        assert_eq!(fleet_venue(3).name, "Lab");
        // Slot 3 is the Lab scaled 1.1× — a genuinely different polygon.
        let base = fleet_venue(0).plan.boundary().area();
        let scaled = fleet_venue(3).plan.boundary().area();
        assert!((scaled / base - 1.21).abs() < 1e-9, "area scales by 1.1²");
        check_venue(&fleet_venue(7));
        // Deterministic: the same slot always yields the same venue.
        assert_eq!(
            fleet_venue(5).plan.boundary().vertices(),
            fleet_venue(5).plan.boundary().vertices()
        );
    }

    #[test]
    fn synthetic_workload_is_deterministic_and_request_keyed() {
        let venue = Venue::lab();
        let (truths, batch) = synthetic_workload(&venue, 4, 2, 9);
        let (truths2, batch2) = synthetic_workload(&venue, 4, 2, 9);
        assert_eq!(truths, truths2);
        assert_eq!(batch.len(), 4);
        for (a, b) in batch.iter().zip(&batch2) {
            assert_eq!(a.len(), b.len());
            for (ra, rb) in a.iter().zip(b) {
                assert_eq!(ra.site, rb.site);
                assert_eq!(ra.burst, rb.burst);
            }
        }
        // Drawing request 3 alone matches its slot in the full batch —
        // the builder is index-keyed, not sequence-keyed.
        let builder = WorkloadBuilder::new(&venue);
        let (truth3, reports3) = builder.request(3, 2, 9);
        assert_eq!(truth3, truths[3]);
        assert_eq!(reports3.len(), batch[3].len());
        for (ra, rb) in reports3.iter().zip(&batch[3]) {
            assert_eq!(ra.burst, rb.burst);
        }
    }

    #[test]
    fn lobby_arm_sites_far_from_main_aps() {
        // Sites in the north arm are the Lobby's blind spots for the three
        // southern APs — the spatial-variance story needs them.
        let v = Venue::lobby();
        let arm_site = Point::new(3.0, 12.5);
        assert!(v.test_sites.contains(&arm_site));
        let near_static = v
            .static_aps
            .iter()
            .filter(|ap| ap.distance(arm_site) < 8.0)
            .count();
        assert!(near_static <= 1);
    }
}
