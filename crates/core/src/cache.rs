//! Per-venue precomputed geometry for serving (`VenueCache`).
//!
//! The boundary virtual-AP constraints of Eq. 9–11 and the convex
//! decomposition of the area of interest depend only on the venue polygon,
//! never on the readings of a query. A [`VenueCache`] computes both once so
//! that per-query work in [`crate::SpEstimator::estimate_cached`] touches
//! only the reading-dependent judgement constraints.
//!
//! Bit-identity guarantee: for every convex piece the cache stores exactly
//! [`crate::constraints::boundary_constraints`]`(piece, piece.centroid())`,
//! and the cached estimator concatenates judgement constraints first and
//! boundary constraints second — the same floats in the same order as
//! [`crate::constraints::assemble`], so cached and uncached estimates are
//! bit-for-bit equal (the `cached_geometry_equivalence` property test pins
//! this down).

use crate::constraints;
use nomloc_geometry::{convex, HalfPlane, Polygon};
use nomloc_lp::center::polygon_halfplanes;
use nomloc_lp::relax::WeightedConstraint;

/// One convex piece of the venue with its precomputed boundary constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPiece {
    polygon: Polygon,
    boundary: Vec<WeightedConstraint>,
    edges: Vec<HalfPlane>,
}

impl CachedPiece {
    /// The convex piece itself.
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }

    /// The piece's boundary (virtual-AP) constraints, Eq. 9–11, referenced
    /// from the piece centroid.
    pub fn boundary_constraints(&self) -> &[WeightedConstraint] {
        &self.boundary
    }

    /// The piece's interior edge half-planes —
    /// [`polygon_halfplanes`]`(polygon)` precomputed once, consumed by the
    /// per-query center solve.
    pub fn edge_halfplanes(&self) -> &[HalfPlane] {
        &self.edges
    }
}

/// Precomputed venue-static geometry: convex decomposition plus per-piece
/// boundary constraints.
///
/// Build one per area of interest and reuse it for every query — the
/// [`crate::LocalizationServer`] does this internally.
///
/// # Example
///
/// ```
/// use nomloc_core::cache::VenueCache;
/// use nomloc_geometry::{Point, Polygon};
///
/// let area = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 8.0));
/// let cache = VenueCache::new(area);
/// assert_eq!(cache.pieces().len(), 1); // already convex
/// assert_eq!(cache.n_boundary_constraints(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VenueCache {
    area: Polygon,
    pieces: Vec<CachedPiece>,
}

impl VenueCache {
    /// Decomposes `area` and precomputes every piece's boundary
    /// constraints.
    pub fn new(area: Polygon) -> Self {
        let pieces = convex::decompose(&area)
            .into_iter()
            .map(|polygon| {
                let boundary = constraints::boundary_constraints(&polygon, polygon.centroid());
                let edges = polygon_halfplanes(&polygon);
                CachedPiece {
                    polygon,
                    boundary,
                    edges,
                }
            })
            .collect();
        VenueCache { area, pieces }
    }

    /// The venue polygon this cache was built from.
    pub fn area(&self) -> &Polygon {
        &self.area
    }

    /// The convex pieces with their cached constraints. Empty only for a
    /// degenerate polygon that decomposed into nothing.
    pub fn pieces(&self) -> &[CachedPiece] {
        &self.pieces
    }

    /// Total number of cached boundary constraints across all pieces —
    /// the venue-static share of each query's LP rows.
    pub fn n_boundary_constraints(&self) -> usize {
        self.pieces.iter().map(|p| p.boundary.len()).sum()
    }

    /// Approximate resident size of the cache in bytes: the heap payload
    /// of every piece polygon, boundary-constraint list, and edge list,
    /// plus the struct shells. The multi-venue registry charges this
    /// against its memory budget when deciding which cold venues to evict.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::{size_of, size_of_val};
        let polygon_bytes = |p: &Polygon| size_of_val(p.vertices());
        let mut total = size_of::<VenueCache>() + polygon_bytes(&self.area);
        for piece in &self.pieces {
            total += size_of::<CachedPiece>()
                + polygon_bytes(&piece.polygon)
                + size_of_val(piece.boundary.as_slice())
                + size_of_val(piece.edges.as_slice());
        }
        total
    }

    /// FNV-1a fingerprint over every coefficient bit pattern in the cache,
    /// in deterministic traversal order. Two caches fingerprint equal iff
    /// their geometry is bit-for-bit identical — the eviction tests use
    /// this to pin that a rebuilt cache matches the evicted one exactly.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: &mut u64, bits: u64) {
            for byte in bits.to_le_bytes() {
                *h ^= byte as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in self.area.vertices() {
            eat(&mut h, v.x.to_bits());
            eat(&mut h, v.y.to_bits());
        }
        for piece in &self.pieces {
            for v in piece.polygon.vertices() {
                eat(&mut h, v.x.to_bits());
                eat(&mut h, v.y.to_bits());
            }
            for c in &piece.boundary {
                eat(&mut h, c.halfplane.a.x.to_bits());
                eat(&mut h, c.halfplane.a.y.to_bits());
                eat(&mut h, c.halfplane.b.to_bits());
                eat(&mut h, c.weight.to_bits());
            }
            for e in &piece.edges {
                eat(&mut h, e.a.x.to_bits());
                eat(&mut h, e.a.y.to_bits());
                eat(&mut h, e.b.to_bits());
            }
        }
        eat(&mut h, self.pieces.len() as u64);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BOUNDARY_WEIGHT;
    use nomloc_geometry::Point;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(20.0, 8.0),
            Point::new(8.0, 8.0),
            Point::new(8.0, 15.0),
            Point::new(0.0, 15.0),
        ])
        .unwrap()
    }

    #[test]
    fn convex_area_is_one_piece() {
        let cache = VenueCache::new(square());
        assert_eq!(cache.pieces().len(), 1);
        assert_eq!(cache.pieces()[0].boundary_constraints().len(), 4);
        assert!(cache.pieces()[0]
            .boundary_constraints()
            .iter()
            .all(|c| c.weight == BOUNDARY_WEIGHT));
    }

    #[test]
    fn nonconvex_area_decomposes() {
        let cache = VenueCache::new(l_shape());
        assert!(cache.pieces().len() >= 2, "L-shape must split");
        let total_area: f64 = cache.pieces().iter().map(|p| p.polygon().area()).sum();
        assert!((total_area - l_shape().area()).abs() < 1e-6);
        assert!(cache.n_boundary_constraints() >= 6);
    }

    #[test]
    fn cached_constraints_match_direct_computation() {
        let cache = VenueCache::new(l_shape());
        for piece in cache.pieces() {
            let direct =
                constraints::boundary_constraints(piece.polygon(), piece.polygon().centroid());
            // Bit-identical, not just approximately equal.
            assert_eq!(piece.boundary_constraints(), direct.as_slice());
        }
    }

    #[test]
    fn cached_edges_match_direct_computation() {
        let cache = VenueCache::new(l_shape());
        for piece in cache.pieces() {
            let direct = nomloc_lp::center::polygon_halfplanes(piece.polygon());
            // Bit-identical, not just approximately equal.
            assert_eq!(piece.edge_halfplanes(), direct.as_slice());
        }
    }

    #[test]
    fn area_is_retained() {
        let cache = VenueCache::new(square());
        assert_eq!(cache.area(), &square());
    }

    #[test]
    fn approx_bytes_grows_with_geometry() {
        let small = VenueCache::new(square());
        let big = VenueCache::new(l_shape());
        assert!(small.approx_bytes() > 0);
        assert!(
            big.approx_bytes() > small.approx_bytes(),
            "an L-shape decomposition must weigh more than a single square"
        );
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        // Rebuilding from the same polygon is bit-identical — the registry's
        // evict-then-rebuild path leans on exactly this property.
        assert_eq!(
            VenueCache::new(l_shape()).fingerprint(),
            VenueCache::new(l_shape()).fingerprint()
        );
        assert_ne!(
            VenueCache::new(square()).fingerprint(),
            VenueCache::new(l_shape()).fingerprint()
        );
        // A sub-ULP nudge to one vertex must change the fingerprint.
        let nudged = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, f64::from_bits(10.0_f64.to_bits() + 1)),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        assert_ne!(
            VenueCache::new(square()).fingerprint(),
            VenueCache::new(nudged).fingerprint()
        );
    }
}
