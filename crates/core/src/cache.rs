//! Per-venue precomputed geometry for serving (`VenueCache`).
//!
//! The boundary virtual-AP constraints of Eq. 9–11 and the convex
//! decomposition of the area of interest depend only on the venue polygon,
//! never on the readings of a query. A [`VenueCache`] computes both once so
//! that per-query work in [`crate::SpEstimator::estimate_cached`] touches
//! only the reading-dependent judgement constraints.
//!
//! Bit-identity guarantee: for every convex piece the cache stores exactly
//! [`crate::constraints::boundary_constraints`]`(piece, piece.centroid())`,
//! and the cached estimator concatenates judgement constraints first and
//! boundary constraints second — the same floats in the same order as
//! [`crate::constraints::assemble`], so cached and uncached estimates are
//! bit-for-bit equal (the `cached_geometry_equivalence` property test pins
//! this down).

use crate::constraints;
use nomloc_geometry::{convex, HalfPlane, Polygon};
use nomloc_lp::center::polygon_halfplanes;
use nomloc_lp::relax::WeightedConstraint;

/// One convex piece of the venue with its precomputed boundary constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPiece {
    polygon: Polygon,
    boundary: Vec<WeightedConstraint>,
    edges: Vec<HalfPlane>,
}

impl CachedPiece {
    /// The convex piece itself.
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }

    /// The piece's boundary (virtual-AP) constraints, Eq. 9–11, referenced
    /// from the piece centroid.
    pub fn boundary_constraints(&self) -> &[WeightedConstraint] {
        &self.boundary
    }

    /// The piece's interior edge half-planes —
    /// [`polygon_halfplanes`]`(polygon)` precomputed once, consumed by the
    /// per-query center solve.
    pub fn edge_halfplanes(&self) -> &[HalfPlane] {
        &self.edges
    }
}

/// Precomputed venue-static geometry: convex decomposition plus per-piece
/// boundary constraints.
///
/// Build one per area of interest and reuse it for every query — the
/// [`crate::LocalizationServer`] does this internally.
///
/// # Example
///
/// ```
/// use nomloc_core::cache::VenueCache;
/// use nomloc_geometry::{Point, Polygon};
///
/// let area = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 8.0));
/// let cache = VenueCache::new(area);
/// assert_eq!(cache.pieces().len(), 1); // already convex
/// assert_eq!(cache.n_boundary_constraints(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VenueCache {
    area: Polygon,
    pieces: Vec<CachedPiece>,
}

impl VenueCache {
    /// Decomposes `area` and precomputes every piece's boundary
    /// constraints.
    pub fn new(area: Polygon) -> Self {
        let pieces = convex::decompose(&area)
            .into_iter()
            .map(|polygon| {
                let boundary = constraints::boundary_constraints(&polygon, polygon.centroid());
                let edges = polygon_halfplanes(&polygon);
                CachedPiece {
                    polygon,
                    boundary,
                    edges,
                }
            })
            .collect();
        VenueCache { area, pieces }
    }

    /// The venue polygon this cache was built from.
    pub fn area(&self) -> &Polygon {
        &self.area
    }

    /// The convex pieces with their cached constraints. Empty only for a
    /// degenerate polygon that decomposed into nothing.
    pub fn pieces(&self) -> &[CachedPiece] {
        &self.pieces
    }

    /// Total number of cached boundary constraints across all pieces —
    /// the venue-static share of each query's LP rows.
    pub fn n_boundary_constraints(&self) -> usize {
        self.pieces.iter().map(|p| p.boundary.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BOUNDARY_WEIGHT;
    use nomloc_geometry::Point;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(20.0, 8.0),
            Point::new(8.0, 8.0),
            Point::new(8.0, 15.0),
            Point::new(0.0, 15.0),
        ])
        .unwrap()
    }

    #[test]
    fn convex_area_is_one_piece() {
        let cache = VenueCache::new(square());
        assert_eq!(cache.pieces().len(), 1);
        assert_eq!(cache.pieces()[0].boundary_constraints().len(), 4);
        assert!(cache.pieces()[0]
            .boundary_constraints()
            .iter()
            .all(|c| c.weight == BOUNDARY_WEIGHT));
    }

    #[test]
    fn nonconvex_area_decomposes() {
        let cache = VenueCache::new(l_shape());
        assert!(cache.pieces().len() >= 2, "L-shape must split");
        let total_area: f64 = cache.pieces().iter().map(|p| p.polygon().area()).sum();
        assert!((total_area - l_shape().area()).abs() < 1e-6);
        assert!(cache.n_boundary_constraints() >= 6);
    }

    #[test]
    fn cached_constraints_match_direct_computation() {
        let cache = VenueCache::new(l_shape());
        for piece in cache.pieces() {
            let direct =
                constraints::boundary_constraints(piece.polygon(), piece.polygon().centroid());
            // Bit-identical, not just approximately equal.
            assert_eq!(piece.boundary_constraints(), direct.as_slice());
        }
    }

    #[test]
    fn cached_edges_match_direct_computation() {
        let cache = VenueCache::new(l_shape());
        for piece in cache.pieces() {
            let direct = nomloc_lp::center::polygon_halfplanes(piece.polygon());
            // Bit-identical, not just approximately equal.
            assert_eq!(piece.edge_halfplanes(), direct.as_slice());
        }
    }

    #[test]
    fn area_is_retained() {
        let cache = VenueCache::new(square());
        assert_eq!(cache.area(), &square());
    }
}
