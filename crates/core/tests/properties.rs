//! Property-based tests for the NomLoc core.

use nomloc_core::confidence::{Confidence, HardDecision, Logistic, PaperExp};
use nomloc_core::constraints::{boundary_constraints, judgement_constraints};
use nomloc_core::proximity::{judge_all_pairs, ApSite, PdpReading, ProximityJudgement};
use nomloc_core::{SpEstimator, VenueCache};
use nomloc_geometry::{Point, Polygon};
use proptest::prelude::*;

const W: f64 = 12.0;
const H: f64 = 10.0;

fn area() -> Polygon {
    Polygon::rectangle(Point::new(0.0, 0.0), Point::new(W, H))
}

fn interior_point() -> impl Strategy<Value = Point> {
    (0.2..W - 0.2, 0.2..H - 0.2).prop_map(|(x, y)| Point::new(x, y))
}

/// Truthful judgements for an object at `q` among `aps`.
fn truthful(q: Point, aps: &[Point]) -> Vec<ProximityJudgement> {
    let mut out = Vec::new();
    for i in 0..aps.len() {
        for j in (i + 1)..aps.len() {
            let (near, far) = if q.distance_sq(aps[i]) <= q.distance_sq(aps[j]) {
                (aps[i], aps[j])
            } else {
                (aps[j], aps[i])
            };
            out.push(ProximityJudgement {
                near: ApSite::fixed(i, near),
                far: ApSite::fixed(j, far),
                weight: 0.9,
            });
        }
    }
    out
}

proptest! {
    // Eq. 2–3 axioms hold for every provided confidence family at random
    // ratios.
    #[test]
    fn confidence_axioms(x in 1e-4..1e4f64, k in 0.2..6.0f64) {
        let fns: Vec<Box<dyn Confidence>> = vec![
            Box::new(PaperExp),
            Box::new(Logistic::new(k)),
            Box::new(HardDecision),
        ];
        for f in &fns {
            let s = f.confidence(x) + f.confidence(1.0 / x);
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(f.confidence(x) >= 0.0);
        }
    }

    // Judgement weights always land in [½, 1] for positive PDPs.
    #[test]
    fn judgement_weights_in_range(pdps in prop::collection::vec(1e-9..1e-3f64, 2..8)) {
        let readings: Vec<PdpReading> = pdps
            .iter()
            .enumerate()
            .map(|(i, &p)| PdpReading::new(ApSite::fixed(i, Point::new(i as f64, 0.0)), p))
            .collect();
        let js = judge_all_pairs(&readings, &PaperExp);
        prop_assert_eq!(js.len(), readings.len() * (readings.len() - 1) / 2);
        for j in &js {
            prop_assert!((0.5..=1.0).contains(&j.weight));
        }
    }

    // The winner of every judgement has the larger PDP.
    #[test]
    fn winner_has_larger_pdp(pdps in prop::collection::vec(1e-9..1e-3f64, 2..8)) {
        let readings: Vec<PdpReading> = pdps
            .iter()
            .enumerate()
            .map(|(i, &p)| PdpReading::new(ApSite::fixed(i, Point::new(i as f64, 0.0)), p))
            .collect();
        for j in judge_all_pairs(&readings, &PaperExp) {
            let near_pdp = readings.iter().find(|r| r.site.ap == j.near.ap).unwrap().pdp;
            let far_pdp = readings.iter().find(|r| r.site.ap == j.far.ap).unwrap().pdp;
            prop_assert!(near_pdp >= far_pdp);
        }
    }

    // Truthful judgements admit the true position: zero relaxation cost
    // and the truth satisfies every generated constraint.
    #[test]
    fn truthful_judgements_are_consistent(
        q in interior_point(),
        aps in prop::collection::vec(interior_point(), 2..6),
    ) {
        let js = truthful(q, &aps);
        for c in judgement_constraints(&js) {
            prop_assert!(c.halfplane.violation(q) <= 1e-9);
        }
        let est = SpEstimator::new().estimate(&js, &area()).unwrap();
        prop_assert!(est.relaxation_cost < 1e-6);
    }

    // The estimate is always inside the area (or on its boundary), for
    // arbitrary — even inconsistent — judgements.
    #[test]
    fn estimate_always_in_area(
        q1 in interior_point(),
        q2 in interior_point(),
        aps in prop::collection::vec(interior_point(), 2..6),
    ) {
        // Mix judgements generated from two different "truths" to create
        // inconsistency.
        let mut js = truthful(q1, &aps);
        js.extend(truthful(q2, &aps));
        let est = SpEstimator::new().estimate(&js, &area()).unwrap();
        let a = area();
        prop_assert!(
            a.contains(est.position) || a.distance_to_boundary(est.position) < 1e-6,
            "estimate {} escaped", est.position
        );
        prop_assert!(est.region_area >= 0.0);
    }

    // With truthful judgements the estimate lands in the same partition
    // cell as the truth: its distance to the truth is bounded by the cell
    // diameter (crudely: the venue diagonal over √(constraints)).
    #[test]
    fn truthful_estimate_in_correct_cell(
        q in interior_point(),
        aps in prop::collection::vec(interior_point(), 3..7),
    ) {
        // Distinct APs only (coincident APs give degenerate bisectors).
        for i in 0..aps.len() {
            for j in (i + 1)..aps.len() {
                prop_assume!(aps[i].distance(aps[j]) > 0.5);
            }
        }
        let js = truthful(q, &aps);
        let est = SpEstimator::new().estimate(&js, &area()).unwrap();
        // The estimate satisfies every truthful constraint, hence shares
        // q's cell.
        for c in judgement_constraints(&js) {
            prop_assert!(
                c.halfplane.violation(est.position) <= 1e-6,
                "estimate left the cell: {}", c.halfplane
            );
        }
    }

    // Boundary constraints from any interior reference reproduce area
    // membership.
    #[test]
    fn boundary_constraints_reproduce_area(refp in interior_point(), probe in
        (-2.0..W + 2.0, -2.0..H + 2.0).prop_map(|(x, y)| Point::new(x, y)))
    {
        let cs = boundary_constraints(&area(), refp);
        let inside = area().contains(probe);
        let satisfied = cs.iter().all(|c| c.halfplane.contains(probe));
        // Tolerate the boundary itself.
        if area().distance_to_boundary(probe) > 1e-6 {
            prop_assert_eq!(inside, satisfied, "mismatch at {}", probe);
        }
    }

    // Estimating against a precomputed `VenueCache` is bit-identical to the
    // uncached path, over random convex areas (points on a random ellipse,
    // ordered by angle, are always in convex position) and random reading
    // sets — including inconsistent ones that trigger relaxation.
    #[test]
    fn cached_estimate_matches_uncached(
        raw_angles in prop::collection::vec(0.0..std::f64::consts::TAU, 4..9),
        semi_axes in (2.0..6.0f64, 1.5..5.0f64),
        center in (-3.0..3.0f64, -3.0..3.0f64),
        aps in prop::collection::vec(((-4.0..8.0f64, -4.0..8.0f64), 1e-9..1e-3f64), 3..7),
    ) {
        let (sa, sb) = semi_axes;
        let (cx, cy) = center;
        let mut angles = raw_angles;
        angles.sort_by(f64::total_cmp);
        angles.dedup_by(|cur, prev| (*cur - *prev).abs() < 0.3);
        prop_assume!(angles.len() >= 3);
        prop_assume!(angles[angles.len() - 1] - angles[0] < std::f64::consts::TAU - 0.3);
        let vertices: Vec<Point> = angles
            .iter()
            .map(|&t| Point::new(cx + sa * t.cos(), cy + sb * t.sin()))
            .collect();
        let area = match Polygon::new(vertices) {
            Ok(p) => p,
            Err(_) => { prop_assume!(false); unreachable!() }
        };
        prop_assume!(area.area() > 1.0);

        let readings: Vec<PdpReading> = aps
            .iter()
            .enumerate()
            .map(|(i, &((x, y), pdp))| PdpReading::new(ApSite::fixed(i, Point::new(x, y)), pdp))
            .collect();
        let js = judge_all_pairs(&readings, &PaperExp);

        let est = SpEstimator::new();
        let cache = VenueCache::new(area.clone());
        prop_assert_eq!(est.estimate(&js, &area), est.estimate_cached(&js, &cache));
    }

    // Adding a truthful judgement never grows the feasible region.
    #[test]
    fn downscoping_shrinks_region(
        q in interior_point(),
        aps in prop::collection::vec(interior_point(), 3..6),
        extra in interior_point(),
    ) {
        prop_assume!(extra.distance(q) > 0.5);
        let js = truthful(q, &aps);
        let before = SpEstimator::new().estimate(&js, &area()).unwrap();
        let mut more_aps = aps.clone();
        more_aps.push(extra);
        let js2 = truthful(q, &more_aps);
        let after = SpEstimator::new().estimate(&js2, &area()).unwrap();
        prop_assert!(after.region_area <= before.region_area + 1e-6,
            "region grew: {} → {}", before.region_area, after.region_area);
    }
}
