//! Serial / parallel equivalence of the batched serving path.
//!
//! `LocalizationServer::localize_batch` fans request slices across scoped
//! worker threads. The localization pipeline is RNG-free, so the worker
//! count must never change a single bit of any estimate, and the
//! `PipelineStats` counter totals (exact sums of per-request increments)
//! must agree too. Latency histograms are deliberately excluded: wall-clock
//! timings are the one thing that legitimately varies run to run.

use nomloc_core::proximity::{ApSite, PdpReading};
use nomloc_core::scenario::Venue;
use nomloc_core::LocalizationServer;

/// Deterministic pseudo-random requests from a splitmix stream seeded per
/// request index, so every worker count sees the identical batch.
fn batch_for(venue: &Venue, n: usize) -> Vec<Vec<PdpReading>> {
    let aps = venue.static_deployment();
    (0..n as u64)
        .map(|req| {
            aps.iter()
                .enumerate()
                .map(|(i, &p)| {
                    let mut z = (req + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64 + 1);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    let frac = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
                    PdpReading::new(ApSite::fixed(i + 1, p), 1e-8 + 1e-5 * frac)
                })
                .collect()
        })
        .collect()
}

#[test]
fn batch_estimates_identical_across_worker_counts() {
    for venue in [Venue::lab(), Venue::lobby()] {
        let area = venue.plan.boundary().clone();
        let requests = batch_for(&venue, 23);

        let serial = LocalizationServer::new(area.clone()).with_workers(1);
        let reference = serial.localize_batch(&requests);
        assert_eq!(reference.len(), requests.len());
        assert!(
            reference.iter().all(|r| r.is_ok()),
            "{}: reference batch should localize every request",
            venue.name
        );

        for workers in [2, 3, 8, 64] {
            let parallel = LocalizationServer::new(area.clone()).with_workers(workers);
            let got = parallel.localize_batch(&requests);
            assert_eq!(
                reference, got,
                "{}: {workers}-worker batch diverged from serial",
                venue.name
            );
        }
    }
}

#[test]
fn batch_counter_totals_identical_across_worker_counts() {
    let venue = Venue::lab();
    let area = venue.plan.boundary().clone();
    let requests = batch_for(&venue, 17);

    let serial = LocalizationServer::new(area.clone()).with_workers(1);
    serial.localize_batch(&requests);
    let reference = serial.stats_snapshot().counters;
    assert_eq!(reference.requests, requests.len() as u64);
    assert!(reference.simplex_iterations > 0);

    for workers in [2, 5, 16] {
        let parallel = LocalizationServer::new(area.clone()).with_workers(workers);
        parallel.localize_batch(&requests);
        assert_eq!(
            reference,
            parallel.stats_snapshot().counters,
            "{workers}-worker counter totals diverged from serial"
        );
    }
}

#[test]
fn repeated_batches_accumulate_counters_exactly() {
    let venue = Venue::lab();
    let server = LocalizationServer::new(venue.plan.boundary().clone()).with_workers(4);
    let requests = batch_for(&venue, 9);

    server.localize_batch(&requests);
    let once = server.stats_snapshot().counters;
    server.localize_batch(&requests);
    let twice = server.stats_snapshot().counters;

    assert_eq!(twice.requests, 2 * once.requests);
    assert_eq!(twice.judgements_formed, 2 * once.judgements_formed);
    assert_eq!(twice.constraints_generated, 2 * once.constraints_generated);
    assert_eq!(twice.simplex_iterations, 2 * once.simplex_iterations);

    server.reset_stats();
    assert_eq!(server.stats_snapshot().counters.requests, 0);
}
