//! SVG rendering of NomLoc scenes and evaluation curves.
//!
//! Pure-string SVG generation (no dependencies): floor plans with walls,
//! obstacles, APs and estimates, plus CDF line charts — the visual
//! counterparts of the paper's Fig. 6 layouts and Fig. 9/10 curves. The
//! `repro_*` binaries write these next to their text output when the
//! `NOMLOC_SVG_DIR` environment variable is set.
//!
//! # Example
//!
//! ```
//! use nomloc_geometry::{Point, Polygon};
//! use nomloc_report::SceneBuilder;
//! use nomloc_rfsim::FloorPlan;
//!
//! let plan = FloorPlan::builder(Polygon::rectangle(
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 8.0),
//! ))
//! .build();
//! let svg = SceneBuilder::new(&plan)
//!     .ap(Point::new(1.0, 1.0), "AP1")
//!     .object(Point::new(5.0, 4.0), "truth")
//!     .estimate(Point::new(5.4, 4.3), "estimate")
//!     .render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("AP1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nomloc_dsp::stats::Ecdf;
use nomloc_geometry::{Point, Polygon};
use nomloc_rfsim::FloorPlan;
use std::fmt::Write as _;

/// Pixels per metre in rendered scenes.
const SCALE: f64 = 40.0;
/// Canvas margin, pixels.
const MARGIN: f64 = 20.0;

/// Builds an SVG scene of a floor plan with annotated points.
#[derive(Debug, Clone)]
pub struct SceneBuilder<'a> {
    plan: &'a FloorPlan,
    aps: Vec<(Point, String)>,
    objects: Vec<(Point, String)>,
    estimates: Vec<(Point, String)>,
    regions: Vec<Polygon>,
}

impl<'a> SceneBuilder<'a> {
    /// Starts a scene over `plan`.
    pub fn new(plan: &'a FloorPlan) -> Self {
        SceneBuilder {
            plan,
            aps: Vec::new(),
            objects: Vec::new(),
            estimates: Vec::new(),
            regions: Vec::new(),
        }
    }

    /// Adds an AP marker (triangle).
    pub fn ap(mut self, p: Point, label: impl Into<String>) -> Self {
        self.aps.push((p, label.into()));
        self
    }

    /// Adds a ground-truth object marker (filled circle).
    pub fn object(mut self, p: Point, label: impl Into<String>) -> Self {
        self.objects.push((p, label.into()));
        self
    }

    /// Adds an estimate marker (cross).
    pub fn estimate(mut self, p: Point, label: impl Into<String>) -> Self {
        self.estimates.push((p, label.into()));
        self
    }

    /// Adds a translucent region overlay (e.g. the feasible polygon).
    pub fn region(mut self, polygon: Polygon) -> Self {
        self.regions.push(polygon);
        self
    }

    /// Renders the scene to an SVG document string.
    pub fn render(&self) -> String {
        let (min, max) = self.plan.boundary().bounding_box();
        let w = (max.x - min.x) * SCALE + 2.0 * MARGIN;
        let h = (max.y - min.y) * SCALE + 2.0 * MARGIN;
        // SVG y grows downward; flip so the venue reads like the paper's
        // plan view.
        let tx = |p: Point| MARGIN + (p.x - min.x) * SCALE;
        let ty = |p: Point| MARGIN + (max.y - p.y) * SCALE;

        let mut s = String::new();
        let _ = write!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
        );
        s.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);

        // Boundary.
        s.push_str(&polygon_path(
            self.plan.boundary(),
            &tx,
            &ty,
            "none",
            "#333",
            2.0,
        ));
        // Obstacles.
        for ob in self.plan.obstacles() {
            s.push_str(&polygon_path(&ob.shape, &tx, &ty, "#ccc", "#888", 1.0));
        }
        // Walls.
        for wall in self.plan.walls() {
            let (a, b) = (wall.segment.a, wall.segment.b);
            let _ = write!(
                s,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#555" stroke-width="3"/>"##,
                tx(a),
                ty(a),
                tx(b),
                ty(b)
            );
        }
        // Regions (under markers).
        for region in &self.regions {
            s.push_str(&polygon_path(region, &tx, &ty, "#9ecae144", "#3182bd", 1.0));
        }
        // APs.
        for (p, label) in &self.aps {
            let (x, y) = (tx(*p), ty(*p));
            let _ = write!(
                s,
                r##"<polygon points="{:.1},{:.1} {:.1},{:.1} {:.1},{:.1}" fill="#d95f02"/>"##,
                x,
                y - 7.0,
                x - 6.0,
                y + 5.0,
                x + 6.0,
                y + 5.0
            );
            s.push_str(&text(x + 8.0, y, label));
        }
        // Objects.
        for (p, label) in &self.objects {
            let (x, y) = (tx(*p), ty(*p));
            let _ = write!(
                s,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="#1b9e77"/>"##
            );
            s.push_str(&text(x + 8.0, y, label));
        }
        // Estimates.
        for (p, label) in &self.estimates {
            let (x, y) = (tx(*p), ty(*p));
            let _ = write!(
                s,
                r##"<path d="M {x0:.1} {y0:.1} L {x1:.1} {y1:.1} M {x0:.1} {y1:.1} L {x1:.1} {y0:.1}" stroke="#7570b3" stroke-width="2.5" fill="none"/>"##,
                x0 = x - 5.0,
                y0 = y - 5.0,
                x1 = x + 5.0,
                y1 = y + 5.0,
            );
            s.push_str(&text(x + 8.0, y, label));
        }
        s.push_str("</svg>");
        s
    }
}

fn polygon_path(
    polygon: &Polygon,
    tx: &impl Fn(Point) -> f64,
    ty: &impl Fn(Point) -> f64,
    fill: &str,
    stroke: &str,
    width: f64,
) -> String {
    let mut d = String::new();
    for (i, v) in polygon.vertices().iter().enumerate() {
        let _ = write!(
            d,
            "{}{:.1},{:.1} ",
            if i == 0 { "M " } else { "L " },
            tx(*v),
            ty(*v)
        );
    }
    d.push('Z');
    format!(r#"<path d="{d}" fill="{fill}" stroke="{stroke}" stroke-width="{width}"/>"#)
}

fn text(x: f64, y: f64, label: &str) -> String {
    if label.is_empty() {
        return String::new();
    }
    format!(
        r##"<text x="{x:.1}" y="{y:.1}" font-family="sans-serif" font-size="11" fill="#222">{}</text>"##,
        escape(label)
    )
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders one or more labelled CDFs as an SVG line chart (the Fig. 9/10
/// presentation).
///
/// Returns `None` when `curves` is empty.
pub fn cdf_chart(title: &str, curves: &[(&str, &Ecdf)]) -> Option<String> {
    if curves.is_empty() {
        return None;
    }
    const W: f64 = 480.0;
    const H: f64 = 320.0;
    const L: f64 = 50.0; // left axis margin
    const B: f64 = 40.0; // bottom axis margin
    const T: f64 = 30.0;
    const R: f64 = 20.0;
    let palette = [
        "#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e", "#e6ab02",
    ];

    let x_max = curves
        .iter()
        .flat_map(|(_, c)| c.sorted_values().last().copied())
        .fold(1.0f64, f64::max);

    let px = |v: f64| L + v / x_max * (W - L - R);
    let py = |q: f64| H - B - q * (H - B - T);

    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W:.0}" height="{H:.0}" viewBox="0 0 {W:.0} {H:.0}">"#
    );
    s.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    let _ = write!(
        s,
        r##"<text x="{:.0}" y="18" font-family="sans-serif" font-size="13" fill="#111">{}</text>"##,
        L,
        escape(title)
    );
    // Axes.
    let _ = write!(
        s,
        r##"<line x1="{L}" y1="{}" x2="{}" y2="{}" stroke="#333"/><line x1="{L}" y1="{T}" x2="{L}" y2="{}" stroke="#333"/>"##,
        H - B,
        W - R,
        H - B,
        H - B
    );
    // X ticks at quarters.
    for k in 0..=4 {
        let v = x_max * k as f64 / 4.0;
        let x = px(v);
        let _ = write!(
            s,
            r##"<line x1="{x:.1}" y1="{}" x2="{x:.1}" y2="{}" stroke="#333"/><text x="{x:.1}" y="{}" font-family="sans-serif" font-size="10" text-anchor="middle" fill="#333">{v:.1}</text>"##,
            H - B,
            H - B + 4.0,
            H - B + 16.0
        );
    }
    // Y ticks.
    for k in 0..=4 {
        let q = k as f64 / 4.0;
        let y = py(q);
        let _ = write!(
            s,
            r##"<line x1="{}" y1="{y:.1}" x2="{L}" y2="{y:.1}" stroke="#333"/><text x="{}" y="{y:.1}" font-family="sans-serif" font-size="10" text-anchor="end" fill="#333">{q:.2}</text>"##,
            L - 4.0,
            L - 7.0
        );
    }
    // Curves: staircase polylines from (0, 0).
    for (i, (label, cdf)) in curves.iter().enumerate() {
        let color = palette[i % palette.len()];
        let mut d = format!("M {:.1} {:.1} ", px(0.0), py(0.0));
        let mut prev_q = 0.0;
        for (v, q) in cdf.series() {
            let _ = write!(d, "L {:.1} {:.1} ", px(v), py(prev_q));
            let _ = write!(d, "L {:.1} {:.1} ", px(v), py(q));
            prev_q = q;
        }
        let _ = write!(d, "L {:.1} {:.1}", px(x_max), py(prev_q));
        let _ = write!(
            s,
            r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="2"/>"#
        );
        // Legend entry.
        let ly = T + 14.0 * i as f64;
        let _ = write!(
            s,
            r##"<line x1="{}" y1="{ly:.1}" x2="{}" y2="{ly:.1}" stroke="{color}" stroke-width="3"/><text x="{}" y="{:.1}" font-family="sans-serif" font-size="11" fill="#222">{}</text>"##,
            W - R - 120.0,
            W - R - 100.0,
            W - R - 94.0,
            ly + 4.0,
            escape(label)
        );
    }
    // Axis labels.
    let _ = write!(
        s,
        r##"<text x="{:.0}" y="{:.0}" font-family="sans-serif" font-size="11" fill="#333">error (m)</text>"##,
        (W - L) / 2.0,
        H - 8.0
    );
    s.push_str("</svg>");
    Some(s)
}

/// Writes `svg` to `<dir>/<name>.svg` when the directory exists.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_svg(dir: &std::path::Path, name: &str, svg: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.svg")), svg)
}

/// The directory named by `NOMLOC_SVG_DIR`, when set and non-empty.
pub fn svg_dir_from_env() -> Option<std::path::PathBuf> {
    std::env::var("NOMLOC_SVG_DIR")
        .ok()
        .filter(|s| !s.is_empty())
        .map(std::path::PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomloc_geometry::Segment;
    use nomloc_rfsim::Material;

    fn plan() -> FloorPlan {
        FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(12.0, 8.0),
        ))
        .rect_obstacle(Point::new(2.0, 2.0), Point::new(3.0, 3.0), Material::WOOD)
        .wall(
            Segment::new(Point::new(6.0, 0.0), Point::new(6.0, 4.0)),
            Material::DRYWALL,
        )
        .build()
    }

    #[test]
    fn scene_contains_all_elements() {
        let p = plan();
        let svg = SceneBuilder::new(&p)
            .ap(Point::new(1.0, 1.0), "AP1")
            .ap(Point::new(11.0, 7.0), "AP2")
            .object(Point::new(6.0, 6.0), "person")
            .estimate(Point::new(6.5, 6.2), "est")
            .region(Polygon::rectangle(
                Point::new(5.0, 5.0),
                Point::new(8.0, 7.0),
            ))
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("AP1") && svg.contains("AP2"));
        assert!(svg.contains("person") && svg.contains("est"));
        assert_eq!(svg.matches("<polygon").count(), 2, "two AP triangles");
        assert_eq!(svg.matches("<circle").count(), 1);
        // boundary + obstacle + region paths + estimate cross.
        assert!(svg.matches("<path").count() >= 4);
        assert!(svg.contains("<line"), "wall rendered");
    }

    #[test]
    fn scene_flips_y_axis() {
        // A point at the venue's top edge must render *above* (smaller y
        // than) a bottom-edge point.
        let p = plan();
        let svg_top = SceneBuilder::new(&p)
            .object(Point::new(6.0, 8.0), "")
            .render();
        let svg_bottom = SceneBuilder::new(&p)
            .object(Point::new(6.0, 0.0), "")
            .render();
        let cy = |s: &str| -> f64 {
            let i = s.find("cy=\"").unwrap() + 4;
            s[i..].split('"').next().unwrap().parse().unwrap()
        };
        assert!(cy(&svg_top) < cy(&svg_bottom));
    }

    #[test]
    fn labels_are_escaped() {
        let p = plan();
        let svg = SceneBuilder::new(&p)
            .object(Point::new(1.0, 1.0), "<&>")
            .render();
        assert!(svg.contains("&lt;&amp;&gt;"));
        assert!(!svg.contains("<&>"));
    }

    #[test]
    fn cdf_chart_structure() {
        let a = Ecdf::new(vec![0.5, 1.0, 1.5, 2.5]).unwrap();
        let b = Ecdf::new(vec![1.0, 2.0, 3.0, 4.5]).unwrap();
        let svg = cdf_chart("Fig. 9(a) — Lab", &[("static", &b), ("nomadic", &a)]).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("static") && svg.contains("nomadic"));
        assert!(svg.contains("Fig. 9(a)"));
        // Two curve paths (plus no fill paths beyond curves).
        assert!(svg.matches(r##"fill="none" stroke="#"##).count() >= 2);
        assert!(cdf_chart("empty", &[]).is_none());
    }

    #[test]
    fn write_svg_round_trip() {
        let dir = std::env::temp_dir().join("nomloc_report_test");
        write_svg(&dir, "scene", "<svg></svg>").unwrap();
        let content = std::fs::read_to_string(dir.join("scene.svg")).unwrap();
        assert_eq!(content, "<svg></svg>");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_dir_detection() {
        std::env::remove_var("NOMLOC_SVG_DIR");
        assert!(svg_dir_from_env().is_none());
        std::env::set_var("NOMLOC_SVG_DIR", "/tmp/x");
        assert_eq!(svg_dir_from_env(), Some(std::path::PathBuf::from("/tmp/x")));
        std::env::remove_var("NOMLOC_SVG_DIR");
    }
}
