//! RF simulator throughput: link tracing and CSI sampling in both venues.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nomloc_core::scenario::Venue;
use nomloc_rfsim::{Environment, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_link");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, venue) in [("lab", Venue::lab()), ("lobby", Venue::lobby())] {
        let env = Environment::new(venue.plan.clone(), venue.radio.clone());
        let tx = venue.test_sites[0];
        let rx = venue.static_aps[0];
        group.bench_function(name, |b| {
            b.iter(|| env.trace(std::hint::black_box(tx), std::hint::black_box(rx)))
        });
    }
    group.finish();
}

fn bench_reflection_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("reflection_order");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let venue = Venue::lab();
    for order in [0u8, 1, 2] {
        let mut radio = venue.radio.clone();
        radio.reflection_order = order;
        let env = Environment::new(venue.plan.clone(), radio);
        let tx = venue.test_sites[0];
        let rx = venue.static_aps[0];
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| env.trace(std::hint::black_box(tx), std::hint::black_box(rx)))
        });
    }
    group.finish();
}

fn bench_csi_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("csi_sampling");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let venue = Venue::lab();
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let grid = SubcarrierGrid::intel5300();
    let tx = venue.test_sites[0];
    let rx = venue.static_aps[0];
    let trace = env.trace(tx, rx);
    let mut rng = StdRng::seed_from_u64(5);
    group.bench_function("single_snapshot", |b| {
        b.iter(|| trace.sample_csi(env.config(), &grid, &mut rng))
    });
    group.bench_function("burst_60", |b| {
        b.iter(|| env.sample_csi_burst(tx, rx, &grid, 60, &mut rng))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace,
    bench_reflection_orders,
    bench_csi_sampling
);
criterion_main!(benches);
