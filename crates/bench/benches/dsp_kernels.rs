//! DSP kernel throughput: FFT variants and PDP extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nomloc_dsp::pdp::DelayProfile;
use nomloc_dsp::{fft, Complex};

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Complex::new((0.3 * t).sin(), (0.7 * t).cos())
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // 30 = Intel 5300 grouped CSI (Bluestein path); powers of two hit the
    // radix-2 path.
    for n in [30usize, 56, 64, 256, 1024] {
        let x = signal(n);
        group.bench_with_input(BenchmarkId::new("forward", n), &x, |b, x| {
            b.iter(|| fft::fft(std::hint::black_box(x)))
        });
        group.bench_with_input(BenchmarkId::new("inverse", n), &x, |b, x| {
            b.iter(|| fft::ifft(std::hint::black_box(x)))
        });
    }
    group.finish();
}

fn bench_pdp_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdp");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let csi = signal(30);
    for pad in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("from_csi_pad", pad), &pad, |b, &pad| {
            b.iter(|| DelayProfile::from_csi(std::hint::black_box(&csi), 20e6, pad).peak())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_pdp_extraction);
criterion_main!(benches);
