//! Batched serving throughput: warm-cache `localize_batch` against a
//! per-query uncached loop that rebuilds the venue geometry every request
//! (`SpEstimator::estimate` on the raw polygon re-decomposes the area and
//! recomputes every boundary virtual-AP constraint).
//!
//! The acceptance figure for the serving refactor is the ratio between
//! `uncached_loop` and `batch_cached` on the Lab venue: identical requests
//! and identical LP work, with the geometry precomputed once on the cached
//! side. A parallel variant is included for machines with more than one
//! core; on a single-core host it degenerates to the serial path plus
//! thread-spawn overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use nomloc_bench::serving::requests_for;
use nomloc_core::scenario::Venue;
use nomloc_core::{LocalizationServer, SpEstimator};

fn bench_serving(c: &mut Criterion) {
    for venue in [Venue::lab(), Venue::lobby()] {
        let mut group = c.benchmark_group(format!("serving_throughput/{}", venue.name));
        group.sample_size(40);
        group.measurement_time(std::time::Duration::from_secs(4));
        group.warm_up_time(std::time::Duration::from_millis(500));

        let area = venue.plan.boundary().clone();
        let requests = requests_for(&venue, 256);

        // Per-query uncached loop: judge via the server (same stats
        // overhead as the cached path) but estimate on the raw polygon,
        // re-decomposing and rebuilding boundary constraints per request.
        let server = LocalizationServer::new(area.clone());
        let estimator = SpEstimator::new();
        group.bench_function("uncached_loop", |b| {
            b.iter(|| {
                for readings in &requests {
                    let judgements = server.judge(std::hint::black_box(readings));
                    estimator
                        .estimate(&judgements, &area)
                        .expect("estimate failed");
                }
            })
        });

        // Warm-cache serial batch: same work, geometry precomputed once.
        let serial = LocalizationServer::new(area.clone()).with_workers(1);
        group.bench_function("batch_cached", |b| {
            b.iter(|| {
                let results = serial.localize_batch(std::hint::black_box(&requests));
                assert!(results.iter().all(|r| r.is_ok()));
            })
        });

        // Warm-cache batch across all available cores.
        let parallel = LocalizationServer::new(area);
        group.bench_function("batch_cached_parallel", |b| {
            b.iter(|| {
                let results = parallel.localize_batch(std::hint::black_box(&requests));
                assert!(results.iter().all(|r| r.is_ok()));
            })
        });

        group.finish();
        paired_ratio(&venue);
    }
}

/// Paired min-of-rounds comparison: alternates one uncached pass and one
/// cached pass per round so slow drift (thermal, scheduler) hits both sides
/// equally, then compares the fastest round of each. This resolves the
/// few-percent geometry-cache delta that the coarse sampler above cannot
/// separate from preemption noise on a busy single-core host.
fn paired_ratio(venue: &Venue) {
    let area = venue.plan.boundary().clone();
    let requests = requests_for(venue, 64);
    let server = LocalizationServer::new(area.clone());
    let serial = LocalizationServer::new(area.clone()).with_workers(1);
    let estimator = SpEstimator::new();

    let rounds = nomloc_bench::rounds(400);
    let mut best_uncached = f64::INFINITY;
    let mut best_cached = f64::INFINITY;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        for readings in &requests {
            let judgements = server.judge(std::hint::black_box(readings));
            std::hint::black_box(
                estimator
                    .estimate(&judgements, &area)
                    .expect("estimate failed"),
            );
        }
        best_uncached = best_uncached.min(t.elapsed().as_secs_f64());

        let t = std::time::Instant::now();
        std::hint::black_box(serial.localize_batch(std::hint::black_box(&requests)));
        best_cached = best_cached.min(t.elapsed().as_secs_f64());
    }
    println!(
        "serving_throughput/{}/paired_min                 uncached {:.1} µs, cached {:.1} µs, speedup {:.3}x",
        venue.name,
        best_uncached * 1e6,
        best_cached * 1e6,
        best_uncached / best_cached,
    );
    let counters = serial.stats_snapshot().counters;
    println!(
        "serving_throughput/{}/warm_starts                {} hits over {} requests ({} phase-1 pivots saved)",
        venue.name,
        counters.warm_start_hits,
        counters.requests,
        counters.phase1_pivots_saved,
    );
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
