//! Solver scalability (the §IV-B-4 polynomial-time claim): relaxation-LP
//! wall time as the constraint count grows with APs × nomadic sites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nomloc_geometry::{HalfPlane, Point, Polygon};
use nomloc_lp::center::{self, CenterMethod};
use nomloc_lp::relax::{relax_constraints, WeightedConstraint};

/// Builds the constraint set a venue with `n_sites` AP sites would
/// generate: all pairwise bisectors around a ring, plus the boundary.
fn constraint_set(n_sites: usize) -> (Vec<WeightedConstraint>, Polygon) {
    let bounds = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(20.0, 20.0));
    let sites: Vec<Point> = (0..n_sites)
        .map(|i| {
            let a = i as f64 / n_sites as f64 * std::f64::consts::TAU;
            Point::new(10.0 + 8.0 * a.cos(), 10.0 + 8.0 * a.sin())
        })
        .collect();
    let object = Point::new(6.0, 9.0);
    let mut cs = Vec::new();
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            let (near, far) = if object.distance_sq(sites[i]) <= object.distance_sq(sites[j]) {
                (sites[i], sites[j])
            } else {
                (sites[j], sites[i])
            };
            cs.push(WeightedConstraint::new(
                HalfPlane::closer_to(near, far),
                0.8,
            ));
        }
    }
    for h in center::polygon_halfplanes(&bounds) {
        cs.push(WeightedConstraint::new(h, 1000.0));
    }
    (cs, bounds)
}

fn bench_relaxation(c: &mut Criterion) {
    let mut group = c.benchmark_group("relaxation_lp");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n_sites in [4usize, 6, 8, 12, 16, 24] {
        let (cs, _) = constraint_set(n_sites);
        group.bench_with_input(BenchmarkId::new("constraints", cs.len()), &cs, |b, cs| {
            b.iter(|| relax_constraints(std::hint::black_box(cs)).unwrap())
        });
    }
    group.finish();
}

fn bench_centers(c: &mut Criterion) {
    let mut group = c.benchmark_group("center_methods");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let (cs, bounds) = constraint_set(8);
    let hps: Vec<HalfPlane> = cs.iter().map(|c| c.halfplane).collect();
    for (name, method) in [
        ("chebyshev", CenterMethod::Chebyshev),
        ("analytic", CenterMethod::Analytic),
        ("centroid", CenterMethod::Centroid),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| center::center(method, std::hint::black_box(&hps), &bounds).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relaxation, bench_centers);
criterion_main!(benches);
