//! Solver scalability (the §IV-B-4 polynomial-time claim): relaxation-LP
//! wall time as the constraint count grows with APs × nomadic sites, plus
//! the flat-tableau workspace solver against the retained dense reference
//! (`Program::solve_reference`) — the acceptance figure for the solver
//! rewrite is the paired min-of-rounds speedup on tens-of-rows programs,
//! also emitted as `BENCH_lp.json` by the `bench_json` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nomloc_bench::lpcmp;
use nomloc_geometry::HalfPlane;
use nomloc_lp::center::{self, CenterMethod};
use nomloc_lp::relax::relax_constraints;
use nomloc_lp::simplex::SimplexWorkspace;

fn bench_relaxation(c: &mut Criterion) {
    let mut group = c.benchmark_group("relaxation_lp");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n_sites in [4usize, 6, 8, 12, 16, 24] {
        let (cs, _, _) = lpcmp::constraint_set(n_sites);
        group.bench_with_input(BenchmarkId::new("constraints", cs.len()), &cs, |b, cs| {
            b.iter(|| relax_constraints(std::hint::black_box(cs)).unwrap())
        });
    }
    group.finish();
}

/// Workspace solver vs the dense reference on the same relaxation LPs.
/// Both sides solve the identical program; only the solver path differs.
fn bench_solver_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_path");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n_sites in [6usize, 8, 12] {
        let (cs, _, _) = lpcmp::constraint_set(n_sites);
        let rows = cs.len();
        group.bench_with_input(BenchmarkId::new("reference", rows), &cs, |b, cs| {
            b.iter(|| lpcmp::relax_reference(std::hint::black_box(cs)))
        });
        group.bench_with_input(BenchmarkId::new("workspace", rows), &cs, |b, cs| {
            let mut ws = SimplexWorkspace::new();
            b.iter(|| {
                nomloc_lp::relax::relax_constraints_in(&mut ws, std::hint::black_box(cs)).unwrap()
            })
        });
    }
    group.finish();
    paired_solver_ratio();
}

/// Paired min-of-rounds comparison on tens-of-rows programs — the rewrite's
/// acceptance figure (target: ≥ 1.5× on these sizes).
fn paired_solver_ratio() {
    for n_sites in [6usize, 8, 12] {
        let (cs, candidates, bounds) = lpcmp::constraint_set(n_sites);
        let edges = center::polygon_halfplanes(&bounds);
        let mut ws = SimplexWorkspace::new();

        let (ref_ns, ws_ns) = lpcmp::paired_min_ns(
            nomloc_bench::rounds(300),
            8,
            || {
                std::hint::black_box(lpcmp::relax_reference(std::hint::black_box(&cs)));
            },
            || {
                std::hint::black_box(
                    nomloc_lp::relax::relax_constraints_in(&mut ws, std::hint::black_box(&cs))
                        .unwrap(),
                );
            },
        );
        println!(
            "solver_path/paired_min/{:<3} rows                   reference {:.1} µs, workspace {:.1} µs, speedup {:.3}x",
            cs.len(),
            ref_ns / 1e3,
            ws_ns / 1e3,
            ref_ns / ws_ns,
        );

        // Full relax→center pipeline: two cold reference LPs vs the
        // warm-started workspace pair.
        let mut ws = SimplexWorkspace::new();
        let (ref_ns, ws_ns) = lpcmp::paired_min_ns(
            nomloc_bench::rounds(300),
            8,
            || {
                std::hint::black_box(lpcmp::relax_then_center_reference(
                    std::hint::black_box(&cs),
                    candidates,
                    &edges,
                ));
            },
            || {
                std::hint::black_box(lpcmp::relax_then_center_workspace(
                    &mut ws,
                    std::hint::black_box(&cs),
                    candidates,
                    &bounds,
                    &edges,
                ));
            },
        );
        println!(
            "relax_then_center/paired_min/{:<3} rows            reference {:.1} µs, workspace {:.1} µs, speedup {:.3}x",
            cs.len(),
            ref_ns / 1e3,
            ws_ns / 1e3,
            ref_ns / ws_ns,
        );
    }
}

fn bench_centers(c: &mut Criterion) {
    let mut group = c.benchmark_group("center_methods");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let (cs, _, bounds) = lpcmp::constraint_set(8);
    let hps: Vec<HalfPlane> = cs.iter().map(|c| c.halfplane).collect();
    for (name, method) in [
        ("chebyshev", CenterMethod::Chebyshev),
        ("analytic", CenterMethod::Analytic),
        ("centroid", CenterMethod::Centroid),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| center::center(method, std::hint::black_box(&hps), &bounds).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relaxation, bench_solver_paths, bench_centers);
criterion_main!(benches);
