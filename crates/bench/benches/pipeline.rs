//! End-to-end localization latency: CSI reports → PDPs → judgements → LP →
//! position, for both venues and both deployments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nomloc_core::proximity::{ApSite, PdpReading};
use nomloc_core::scenario::Venue;
use nomloc_core::server::{CsiReport, LocalizationServer};
use nomloc_rfsim::{Environment, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reports_for(venue: &Venue, nomadic_sites: usize, packets: usize) -> Vec<CsiReport> {
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let grid = SubcarrierGrid::intel5300();
    let mut rng = StdRng::seed_from_u64(99);
    let object = venue.test_sites[0];
    let mut reports = Vec::new();
    for (i, &p) in venue.static_deployment().iter().enumerate() {
        reports.push(CsiReport {
            site: ApSite::fixed(i + 1, p),
            burst: env.sample_csi_burst(object, p, &grid, packets, &mut rng),
        });
    }
    for (v, &p) in venue.nomadic_sites.iter().take(nomadic_sites).enumerate() {
        reports.push(CsiReport {
            site: ApSite::nomadic(1, v + 1, p),
            burst: env.sample_csi_burst(object, p, &grid, packets, &mut rng),
        });
    }
    reports
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, venue) in [("lab", Venue::lab()), ("lobby", Venue::lobby())] {
        let server = LocalizationServer::new(venue.plan.boundary().clone());
        for nomadic in [0usize, 3] {
            let reports = reports_for(&venue, nomadic, 30);
            group.bench_with_input(
                BenchmarkId::new(name, format!("nomadic{nomadic}")),
                &reports,
                |b, reports| b.iter(|| server.process(std::hint::black_box(reports)).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let venue = Venue::lab();
    let server = LocalizationServer::new(venue.plan.boundary().clone());
    let reports = reports_for(&venue, 3, 30);
    group.bench_function("extract_pdp", |b| {
        b.iter(|| server.extract_readings(std::hint::black_box(&reports)))
    });
    let readings: Vec<PdpReading> = server.extract_readings(&reports);
    group.bench_function("judge_pairs", |b| {
        b.iter(|| server.judge(std::hint::black_box(&readings)))
    });
    group.bench_function("localize_from_readings", |b| {
        b.iter(|| server.localize(std::hint::black_box(&readings)).unwrap())
    });
    group.finish();

    // One clean request so the counters reflect a single query: how often
    // the center LP reuses the relaxation witness in this workload.
    server.reset_stats();
    let est = server.localize(&readings).unwrap();
    println!(
        "pipeline_stages/warm_starts                        {} hits, {} phase-1 pivots saved, {} LP iterations",
        est.warm_start_hits, est.phase1_pivots_saved, est.lp_iterations,
    );
}

criterion_group!(benches, bench_full_pipeline, bench_stages);
criterion_main!(benches);
