//! Geometry and analysis kernel throughput: half-plane clipping, convex
//! decomposition, and localizability-map construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nomloc_core::localizability;
use nomloc_core::scenario::Venue;
use nomloc_geometry::{convex, HalfPlane, Point, Polygon};

fn random_halfplanes(n: usize) -> Vec<HalfPlane> {
    (0..n)
        .map(|i| {
            let a = i as f64 * 2.399; // golden-angle spread
            HalfPlane::closer_to(
                Point::new(6.0 + 3.0 * a.cos(), 4.0 + 2.0 * a.sin()),
                Point::new(6.0 - 4.0 * a.sin(), 4.0 + 3.0 * a.cos()),
            )
        })
        .collect()
}

fn bench_clipping(c: &mut Criterion) {
    let mut group = c.benchmark_group("halfplane_clipping");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    let bounds = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(12.0, 8.0));
    for n in [6usize, 21, 55] {
        let hps = random_halfplanes(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &hps, |b, hps| {
            b.iter(|| nomloc_geometry::intersect_halfplanes(&bounds, std::hint::black_box(hps)))
        });
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("convex_decompose");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    // A staircase polygon with many reflex vertices.
    for steps in [3usize, 6, 12] {
        let mut verts = vec![Point::new(0.0, 0.0)];
        for k in 0..steps {
            let x = (k + 1) as f64;
            verts.push(Point::new(x, k as f64));
            verts.push(Point::new(x, (k + 1) as f64));
        }
        verts.push(Point::new(0.0, steps as f64));
        let poly = Polygon::new(verts).expect("staircase is simple");
        group.bench_with_input(BenchmarkId::from_parameter(steps), &poly, |b, poly| {
            b.iter(|| convex::decompose(std::hint::black_box(poly)))
        });
    }
    group.finish();
}

fn bench_localizability(c: &mut Criterion) {
    let mut group = c.benchmark_group("localizability_map");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, venue) in [("lab", Venue::lab()), ("lobby", Venue::lobby())] {
        let sites = venue.static_deployment();
        group.bench_function(name, |b| {
            b.iter(|| localizability::analyze(venue.plan.boundary(), &sites, 1.0))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_clipping,
    bench_decomposition,
    bench_localizability
);
criterion_main!(benches);
