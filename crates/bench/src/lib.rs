//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Each `repro_*` binary regenerates one figure of the NomLoc paper as a
//! plain-text table/series on stdout; this module holds the formatting and
//! the campaign presets shared across them so every figure is produced from
//! the same parameterization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nomloc_core::experiment::{Campaign, Deployment};
use nomloc_core::scenario::Venue;
use nomloc_dsp::stats::Ecdf;

/// Packets per AP site used by all figure campaigns (the paper collects
/// "thousands of packages at each site"; 60 medians out the same).
pub const PACKETS: usize = 60;

/// Independent trials per test site.
pub const TRIALS: usize = 8;

/// Markov-chain steps per nomadic round (enough to visit all four sites
/// with high probability).
pub const NOMADIC_STEPS: usize = 8;

/// Base RNG seed for all figures (override with the `NOMLOC_SEED`
/// environment variable to check seed-robustness of the trends).
pub const SEED: u64 = 2014;

/// The seed in effect: `NOMLOC_SEED` if set and parseable, else [`SEED`].
pub fn seed() -> u64 {
    std::env::var("NOMLOC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED)
}

/// The standard campaign used in the figures, before per-figure tweaks.
pub fn standard_campaign(venue: Venue, deployment: Deployment) -> Campaign {
    Campaign::new(venue, deployment)
        .packets_per_site(PACKETS)
        .trials_per_site(TRIALS)
        .seed(seed())
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Prints an `(x, y)` series as two aligned columns.
pub fn print_series(x_label: &str, y_label: &str, series: &[(f64, f64)]) {
    println!("{x_label:>12}  {y_label:>12}");
    for (x, y) in series {
        println!("{x:>12.4}  {y:>12.4}");
    }
}

/// Prints a CDF as the `(error, probability)` staircase the paper plots.
pub fn print_cdf(label: &str, cdf: &Ecdf) {
    println!("--- CDF: {label} (n = {}) ---", cdf.len());
    print_series("error_m", "cdf", &cdf.series());
    println!(
        "mean = {:.2} m, median = {:.2} m, 90th = {:.2} m",
        cdf.mean(),
        cdf.quantile(0.5),
        cdf.quantile(0.9)
    );
}

/// Prints a labelled scalar row.
pub fn print_row(label: &str, value: f64) {
    println!("{label:<40} {value:>10.4}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomloc_core::experiment::Deployment;

    #[test]
    fn standard_campaign_constructs() {
        let c = standard_campaign(Venue::lab(), Deployment::Static);
        assert_eq!(c.venue().name, "Lab");
    }

    #[test]
    fn printers_do_not_panic() {
        header("test");
        print_series("x", "y", &[(1.0, 2.0)]);
        print_row("row", 1.0);
        let cdf = Ecdf::new(vec![1.0, 2.0]).unwrap();
        print_cdf("test", &cdf);
    }
}
