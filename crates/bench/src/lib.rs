//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Each `repro_*` binary regenerates one figure of the NomLoc paper as a
//! plain-text table/series on stdout; this module holds the formatting and
//! the campaign presets shared across them so every figure is produced from
//! the same parameterization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nomloc_core::experiment::{Campaign, Deployment};
use nomloc_core::scenario::Venue;
use nomloc_dsp::stats::Ecdf;

/// Packets per AP site used by all figure campaigns (the paper collects
/// "thousands of packages at each site"; 60 medians out the same).
pub const PACKETS: usize = 60;

/// Independent trials per test site.
pub const TRIALS: usize = 8;

/// Markov-chain steps per nomadic round (enough to visit all four sites
/// with high probability).
pub const NOMADIC_STEPS: usize = 8;

/// Base RNG seed for all figures (override with the `NOMLOC_SEED`
/// environment variable to check seed-robustness of the trends).
pub const SEED: u64 = 2014;

/// The seed in effect: `NOMLOC_SEED` if set and parseable, else [`SEED`].
pub fn seed() -> u64 {
    std::env::var("NOMLOC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED)
}

/// The standard campaign used in the figures, before per-figure tweaks.
pub fn standard_campaign(venue: Venue, deployment: Deployment) -> Campaign {
    Campaign::new(venue, deployment)
        .packets_per_site(PACKETS)
        .trials_per_site(TRIALS)
        .seed(seed())
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Prints an `(x, y)` series as two aligned columns.
pub fn print_series(x_label: &str, y_label: &str, series: &[(f64, f64)]) {
    println!("{x_label:>12}  {y_label:>12}");
    for (x, y) in series {
        println!("{x:>12.4}  {y:>12.4}");
    }
}

/// Prints a CDF as the `(error, probability)` staircase the paper plots.
pub fn print_cdf(label: &str, cdf: &Ecdf) {
    println!("--- CDF: {label} (n = {}) ---", cdf.len());
    print_series("error_m", "cdf", &cdf.series());
    println!(
        "mean = {:.2} m, median = {:.2} m, 90th = {:.2} m",
        cdf.mean(),
        cdf.quantile(0.5),
        cdf.quantile(0.9)
    );
}

/// Prints a labelled scalar row.
pub fn print_row(label: &str, value: f64) {
    println!("{label:<40} {value:>10.4}");
}

/// Whether quick-bench mode is on (`NOMLOC_BENCH_QUICK` set): the
/// criterion shim clamps its sampling budget and the paired min-of-rounds
/// loops shrink their round counts accordingly.
pub fn quick_mode() -> bool {
    std::env::var_os("NOMLOC_BENCH_QUICK").is_some()
}

/// `rounds` normally, a tenth of it (at least 10) under
/// [`quick_mode`].
pub fn rounds(rounds: usize) -> usize {
    if quick_mode() {
        (rounds / 10).max(10)
    } else {
        rounds
    }
}

/// LP-solver comparison harness shared by the `lp_scaling` bench and the
/// `bench_json` binary: the venue-shaped constraint generator, the
/// retained dense reference path staged the way the pre-workspace hot path
/// staged it, and a paired min-of-rounds timer.
pub mod lpcmp {
    use nomloc_geometry::{HalfPlane, Point, Polygon};
    use nomloc_lp::center::{self, CenterMethod};
    use nomloc_lp::relax::{relax_then_center, RelaxedCenter, WeightedConstraint, KEPT_SLACK_TOL};
    use nomloc_lp::simplex::{Program, SimplexWorkspace, Solution};
    use nomloc_lp::LpError;

    /// Builds the constraint set a venue with `n_sites` AP sites would
    /// generate: all pairwise bisectors around a ring, plus the bounding
    /// box as high-weight constraints. Returns the constraints, the number
    /// of bisector (candidate) constraints, and the bounds.
    pub fn constraint_set(n_sites: usize) -> (Vec<WeightedConstraint>, usize, Polygon) {
        let bounds = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(20.0, 20.0));
        let sites: Vec<Point> = (0..n_sites)
            .map(|i| {
                let a = i as f64 / n_sites as f64 * std::f64::consts::TAU;
                Point::new(10.0 + 8.0 * a.cos(), 10.0 + 8.0 * a.sin())
            })
            .collect();
        let object = Point::new(6.0, 9.0);
        let mut cs = Vec::new();
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                let (near, far) = if object.distance_sq(sites[i]) <= object.distance_sq(sites[j]) {
                    (sites[i], sites[j])
                } else {
                    (sites[j], sites[i])
                };
                cs.push(WeightedConstraint::new(
                    HalfPlane::closer_to(near, far),
                    0.8,
                ));
            }
        }
        let candidates = cs.len();
        for h in center::polygon_halfplanes(&bounds) {
            cs.push(WeightedConstraint::new(h, 1000.0));
        }
        (cs, candidates, bounds)
    }

    /// The Eq. 19 relaxation LP staged as a [`Program`] and solved by the
    /// retained dense reference path ([`Program::solve_reference`]): the
    /// pre-rewrite hot path — free variables split as `x = x⁺ − x⁻`, a
    /// fresh `Vec<Vec<f64>>` tableau per solve — used as the baseline side
    /// of the speedup measurements.
    ///
    /// # Panics
    ///
    /// Panics when the reference solver fails; the relaxation LP is always
    /// feasible and bounded.
    pub fn relax_reference(cs: &[WeightedConstraint]) -> Solution {
        let n = 2 + cs.len();
        let mut p = Program::new(n);
        for (i, c) in cs.iter().enumerate() {
            p.set_objective(2 + i, c.weight);
            p.set_nonneg(2 + i);
            let mut row = vec![0.0; n];
            row[0] = c.halfplane.a.x;
            row[1] = c.halfplane.a.y;
            row[2 + i] = -1.0;
            p.add_le(row, c.halfplane.b);
        }
        p.solve_reference()
            .expect("relaxation LP is always solvable")
    }

    /// The Chebyshev-center LP over `halfplanes ∪ edges` solved cold by
    /// the reference path — the second LP of the pre-rewrite pipeline.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`] when the region is empty.
    pub fn chebyshev_reference(
        halfplanes: &[HalfPlane],
        edges: &[HalfPlane],
    ) -> Result<Point, LpError> {
        let mut p = Program::new(3);
        p.set_objective(2, -1.0);
        p.set_nonneg(2);
        for h in halfplanes.iter().chain(edges) {
            let norm = h.a.norm();
            if norm < 1e-12 {
                if h.b < -1e-9 {
                    return Err(LpError::Infeasible);
                }
                continue;
            }
            p.add_le(vec![h.a.x, h.a.y, norm], h.b);
        }
        let s = p.solve_reference()?;
        if s.x[2] < -1e-9 {
            return Err(LpError::Infeasible);
        }
        Ok(Point::new(s.x[0], s.x[1]))
    }

    /// The full pre-rewrite relax→center pipeline on the reference solver:
    /// relaxation, keep-filtering at [`KEPT_SLACK_TOL`], then a cold
    /// Chebyshev solve. Mirrors what [`relax_then_center`] does through
    /// the workspace.
    pub fn relax_then_center_reference(
        cs: &[WeightedConstraint],
        candidates: usize,
        edges: &[HalfPlane],
    ) -> Option<Point> {
        let s = relax_reference(cs);
        let kept: Vec<HalfPlane> = cs[..candidates.min(cs.len())]
            .iter()
            .enumerate()
            .filter(|&(i, _)| s.x[2 + i].max(0.0) <= KEPT_SLACK_TOL)
            .map(|(_, c)| c.halfplane)
            .collect();
        chebyshev_reference(&kept, edges).ok()
    }

    /// The workspace-path counterpart of
    /// [`relax_then_center_reference`].
    ///
    /// # Panics
    ///
    /// Panics when the relaxation fails (it cannot for well-formed input).
    pub fn relax_then_center_workspace(
        ws: &mut SimplexWorkspace,
        cs: &[WeightedConstraint],
        candidates: usize,
        bounds: &Polygon,
        edges: &[HalfPlane],
    ) -> RelaxedCenter {
        relax_then_center(ws, cs, candidates, bounds, edges, CenterMethod::Chebyshev)
            .expect("relaxation LP is always solvable")
    }

    /// Paired min-of-rounds timing: alternates one pass of `a` and one of
    /// `b` per round so slow drift (thermal, scheduler) hits both sides
    /// equally, then returns `(min_a_ns, min_b_ns)` over all rounds. Each
    /// pass runs `iters` iterations and is normalized to ns per iteration.
    pub fn paired_min_ns(
        rounds: usize,
        iters: usize,
        mut a: impl FnMut(),
        mut b: impl FnMut(),
    ) -> (f64, f64) {
        let mut best_a = f64::INFINITY;
        let mut best_b = f64::INFINITY;
        for _ in 0..rounds.max(1) {
            let t = std::time::Instant::now();
            for _ in 0..iters.max(1) {
                a();
            }
            best_a = best_a.min(t.elapsed().as_nanos() as f64 / iters.max(1) as f64);

            let t = std::time::Instant::now();
            for _ in 0..iters.max(1) {
                b();
            }
            best_b = best_b.min(t.elapsed().as_nanos() as f64 / iters.max(1) as f64);
        }
        (best_a, best_b)
    }
}

/// Synthetic serving workloads shared by the `serving_throughput` bench
/// and the `bench_json` binary.
pub mod serving {
    use nomloc_core::proximity::{ApSite, PdpReading};
    use nomloc_core::scenario::Venue;

    /// Deterministic synthetic PDP requests over the venue's static APs:
    /// the reading magnitudes vary per request via a splitmix stream, so
    /// every request solves a slightly different LP.
    pub fn requests_for(venue: &Venue, n: usize) -> Vec<Vec<PdpReading>> {
        let aps = venue.static_deployment();
        let mut z = 0x2014_u64;
        (0..n)
            .map(|_| {
                aps.iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
                        PdpReading::new(ApSite::fixed(i + 1, p), 1e-7 + 1e-5 * frac)
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomloc_core::experiment::Deployment;

    #[test]
    fn standard_campaign_constructs() {
        let c = standard_campaign(Venue::lab(), Deployment::Static);
        assert_eq!(c.venue().name, "Lab");
    }

    #[test]
    fn printers_do_not_panic() {
        header("test");
        print_series("x", "y", &[(1.0, 2.0)]);
        print_row("row", 1.0);
        let cdf = Ecdf::new(vec![1.0, 2.0]).unwrap();
        print_cdf("test", &cdf);
    }
}
