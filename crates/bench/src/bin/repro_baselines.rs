//! Context comparison: NomLoc against the classical RSS localizers the
//! paper's related-work section positions itself against — log-distance
//! trilateration (needs calibration), RSS-weighted centroid, nearest-AP,
//! and grid fingerprinting (needs a survey; breaks when an AP moves).

use nomloc_baselines::csi_ranging::{self, CsiRangeModel, PdpObservation};
use nomloc_baselines::fingerprint::{Fingerprint, FingerprintDb};
use nomloc_baselines::rss_ranging::PathLossModel;
use nomloc_baselines::{centroid, nearest, rss_ranging, RssObservation};
use nomloc_bench::{header, print_row, standard_campaign, NOMADIC_STEPS, SEED, TRIALS};
use nomloc_core::experiment::Deployment;
use nomloc_core::pdp::PdpEstimator;
use nomloc_core::scenario::Venue;
use nomloc_geometry::Point;
use nomloc_rfsim::Environment;
use nomloc_rfsim::SubcarrierGrid;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean error of an RSS-based locator over all test sites.
fn rss_baseline<F>(venue: &Venue, locate: F, rng: &mut StdRng) -> f64
where
    F: Fn(&[RssObservation]) -> Option<Point>,
{
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let aps = venue.static_deployment();
    let mut total = 0.0;
    let mut count = 0usize;
    for &site in &venue.test_sites {
        for _ in 0..TRIALS {
            let obs: Vec<RssObservation> = aps
                .iter()
                .map(|&ap| RssObservation::new(ap, env.sample_rss_dbm(site, ap, rng)))
                .collect();
            if let Some(est) = locate(&obs) {
                let est = venue.plan.boundary().clamp_point(est);
                total += est.distance(site);
                count += 1;
            }
        }
    }
    total / count.max(1) as f64
}

/// Fits the path-loss model from a small calibration survey (what NomLoc
/// avoids having to do).
fn calibrate(venue: &Venue, rng: &mut StdRng) -> PathLossModel {
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let aps = venue.static_deployment();
    let mut samples = Vec::new();
    for &site in &venue.test_sites {
        for &ap in &aps {
            let rss = env.sample_rss_dbm(site, ap, rng);
            samples.push((site.distance(ap), rss));
        }
    }
    PathLossModel::fit(&samples).expect("calibration survey is non-degenerate")
}

/// Builds a fingerprint database on a 1 m survey grid.
fn survey(venue: &Venue, rng: &mut StdRng) -> (FingerprintDb, Vec<Point>) {
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let aps = venue.static_deployment();
    let (min, max) = venue.plan.boundary().bounding_box();
    let mut db = FingerprintDb::new();
    let mut x = min.x + 0.5;
    while x < max.x {
        let mut y = min.y + 0.5;
        while y < max.y {
            let p = Point::new(x, y);
            if venue.plan.is_placeable(p) {
                let rss: Vec<f64> = aps
                    .iter()
                    .map(|&ap| env.sample_rss_dbm(p, ap, rng))
                    .collect();
                db.add(Fingerprint {
                    position: p,
                    rss_dbm: rss,
                });
            }
            y += 1.0;
        }
        x += 1.0;
    }
    (db, aps)
}

fn fingerprint_baseline(venue: &Venue, rng: &mut StdRng) -> f64 {
    let (db, aps) = survey(venue, rng);
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let mut total = 0.0;
    let mut count = 0usize;
    for &site in &venue.test_sites {
        for _ in 0..TRIALS {
            let query: Vec<f64> = aps
                .iter()
                .map(|&ap| env.sample_rss_dbm(site, ap, rng))
                .collect();
            if let Some(est) = db.locate(&query, 3) {
                total += est.distance(site);
                count += 1;
            }
        }
    }
    total / count.max(1) as f64
}

/// FILA-style baseline: NomLoc's PDP front end + calibrated range back end.
fn fila_baseline(venue: &Venue, rng: &mut StdRng) -> f64 {
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let grid = SubcarrierGrid::intel5300();
    let est = PdpEstimator::new();
    let aps = venue.static_deployment();

    // Calibration survey: burst PDP vs known distance at every test site.
    let mut samples = Vec::new();
    for &site in &venue.test_sites {
        for &ap in &aps {
            let burst = env.sample_csi_burst(site, ap, &grid, 30, rng);
            if let Some(pdp) = est.pdp_of_burst(&burst) {
                samples.push((site.distance(ap), pdp));
            }
        }
    }
    let model = CsiRangeModel::fit(&samples).expect("calibration survey fits");

    let mut total = 0.0;
    let mut count = 0usize;
    for &site in &venue.test_sites {
        for _ in 0..TRIALS {
            let obs: Vec<PdpObservation> = aps
                .iter()
                .filter_map(|&ap| {
                    let burst = env.sample_csi_burst(site, ap, &grid, 30, rng);
                    est.pdp_of_burst(&burst).map(|p| PdpObservation::new(ap, p))
                })
                .collect();
            if let Some(p) = csi_ranging::locate(&obs, &model) {
                let p = venue.plan.boundary().clamp_point(p);
                total += p.distance(site);
                count += 1;
            }
        }
    }
    total / count.max(1) as f64
}

fn main() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let venue = venue_fn();
        let name = venue.name;
        header(&format!("Baseline comparison — mean error (m), {name}"));
        let mut rng = StdRng::seed_from_u64(SEED);

        let nomloc_static = standard_campaign(venue_fn(), Deployment::Static).run();
        let nomloc_nomadic =
            standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS)).run();
        print_row(
            "NomLoc (nomadic, calibration-free)",
            nomloc_nomadic.mean_error(),
        );
        print_row(
            "NomLoc SP (static, calibration-free)",
            nomloc_static.mean_error(),
        );

        let model = calibrate(&venue, &mut rng);
        print_row(
            "RSS trilateration (calibrated)",
            rss_baseline(&venue, |o| rss_ranging::locate(o, &model), &mut rng),
        );
        let miscal = PathLossModel::new(model.rss_at_1m_dbm, model.exponent * 1.6);
        print_row(
            "RSS trilateration (miscalibrated)",
            rss_baseline(&venue, |o| rss_ranging::locate(o, &miscal), &mut rng),
        );
        print_row(
            "RSS weighted centroid",
            rss_baseline(&venue, |o| centroid::locate(o, 1.0), &mut rng),
        );
        print_row(
            "Nearest AP",
            rss_baseline(&venue, nearest::locate, &mut rng),
        );
        print_row(
            "Fingerprint 3-NN (surveyed)",
            fingerprint_baseline(&venue, &mut rng),
        );
        print_row(
            "FILA-style CSI ranging (calibrated)",
            fila_baseline(&venue, &mut rng),
        );
        println!(
            "(calibrated model: RSS(1 m) = {:.1} dBm, n = {:.2})",
            model.rss_at_1m_dbm, model.exponent
        );
    }
}
