//! Extension ablation (paper §VI future work): aggregating **multiple
//! nomadic APs**. Sweeps the number of nomadic APs from 0 (pure static)
//! to 4 (every AP nomadic) in both venues.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Ablation — nomadic fleet size, {name}"));
        println!(
            "{:>8}  {:>12}  {:>12}  {:>12}",
            "nomads", "mean_err_m", "slv_m2", "err_90th_m"
        );
        for nomads in 0..=4usize {
            let result = standard_campaign(
                venue_fn(),
                Deployment::Fleet {
                    nomads,
                    steps: NOMADIC_STEPS,
                },
            )
            .run();
            println!(
                "{nomads:>8}  {:>12.3}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv(),
                result.error_cdf().quantile(0.9)
            );
        }
    }
}
