//! Design ablation: CSI granularity. The paper credits 20 MHz CSI's
//! frequency diversity for resolving multipath (§III-B); this sweep varies
//! what the receiver exports — 8 pilot subcarriers, the Intel 5300's 30
//! grouped subcarriers, the full 56-subcarrier 20 MHz grid, and a
//! 114-subcarrier 40 MHz channel — and measures the end-to-end effect.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;
use nomloc_rfsim::SubcarrierGrid;

type GridMaker = fn() -> SubcarrierGrid;

fn main() {
    let grids: [(&str, GridMaker); 4] = [
        ("pilots-8", SubcarrierGrid::pilots_8),
        ("intel5300-30", SubcarrierGrid::intel5300),
        ("20MHz-56", SubcarrierGrid::full_80211n_20mhz),
        ("40MHz-114", SubcarrierGrid::full_80211n_40mhz),
    ];
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Ablation — CSI granularity / bandwidth, {name}"));
        println!(
            "{:>14}  {:>12}  {:>12}  {:>12}",
            "grid", "mean_err_m", "slv_m2", "prox_acc"
        );
        for (label, grid) in grids {
            let result = standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                .subcarrier_grid(grid())
                .run();
            println!(
                "{label:>14}  {:>12.3}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv(),
                result.mean_proximity_accuracy()
            );
        }
    }
}
