//! Reproduces Fig. 6: the layouts of the two experimental venues, with
//! APs, nomadic sites, and test sites marked.
//!
//! Prints a text inventory; writes `fig6_lab.svg` / `fig6_lobby.svg` when
//! `NOMLOC_SVG_DIR` is set.

use nomloc_bench::header;
use nomloc_core::scenario::Venue;
use nomloc_report::SceneBuilder;

fn main() {
    for venue in [Venue::lab(), Venue::lobby()] {
        header(&format!("Fig. 6 — layout, {}", venue.name));
        let (min, max) = venue.plan.boundary().bounding_box();
        println!(
            "outline {:.0} × {:.0} m, area {:.0} m², {} obstacles, {} walls",
            max.x - min.x,
            max.y - min.y,
            venue.plan.boundary().area(),
            venue.plan.obstacles().len(),
            venue.plan.walls().len()
        );
        println!("AP1 (nomadic) home: {}", venue.nomadic_home);
        for (i, ap) in venue.static_aps.iter().enumerate() {
            println!("AP{}: {ap}", i + 2);
        }
        for (i, p) in venue.nomadic_sites.iter().enumerate() {
            println!("P{}: {p}", i + 1);
        }
        for (i, s) in venue.test_sites.iter().enumerate() {
            println!("site {:>2}: {s}", i + 1);
        }

        if let Some(dir) = nomloc_report::svg_dir_from_env() {
            let mut scene = SceneBuilder::new(&venue.plan).ap(venue.nomadic_home, "AP1");
            for (i, &ap) in venue.static_aps.iter().enumerate() {
                scene = scene.ap(ap, format!("AP{}", i + 2));
            }
            for (i, &p) in venue.nomadic_sites.iter().enumerate() {
                scene = scene.estimate(p, format!("P{}", i + 1));
            }
            for (i, &s) in venue.test_sites.iter().enumerate() {
                scene = scene.object(s, format!("{}", i + 1));
            }
            let file = format!("fig6_{}", venue.name.to_lowercase());
            match nomloc_report::write_svg(&dir, &file, &scene.render()) {
                Ok(()) => println!("wrote {}/{file}.svg", dir.display()),
                Err(e) => eprintln!("svg write failed: {e}"),
            }
        }
    }
}
