//! Machine-readable end-to-end serving benchmark: stage-attributed
//! ns-per-request through the full daemon pipeline (decode → PDP →
//! constraints → LP → encode), plus paired comparisons of the planned FFT
//! against the retained iterative kernel, pooled against fresh encode
//! buffers, and the zero-allocation pipeline against a faithful replica
//! of the pre-plan allocating path. Written as `BENCH_serving.json` (in
//! the current directory, or `$NOMLOC_BENCH_SERVING_JSON`).
//!
//! Every comparison is a min-of-rounds over alternating passes — see
//! `nomloc_bench::lpcmp::paired_min_ns` — so slow drift (thermal,
//! scheduler) hits both sides equally and the minimum approximates the
//! noise-free cost. The "naive" side reconstructs the pre-optimization
//! hot path exactly: the iterative twiddle-accumulating FFT kernel
//! (`fft_radix2_unplanned`), a fresh allocation for every windowed CSI
//! vector, IFFT output, per-packet PDP list, and reply frame.

use nomloc_bench::{lpcmp, quick_mode, rounds};
use nomloc_core::scenario::{synthetic_workload, Venue};
use nomloc_core::server::CsiReport;
use nomloc_core::{ApSite, LocalizationServer, PdpEstimator, PdpScratch, SpEstimator};
use nomloc_dsp::{fft, Complex};
use nomloc_net::wire::{
    self, ErrorCode, ErrorReply, Frame, LocateRequest, LocateResponse, WireEstimate, WireReport,
    WireVenue,
};
use nomloc_net::BufferPool;
use nomloc_rfsim::CsiSnapshot;
use std::hint::black_box;
use std::io::BufRead;

/// Results of the idle-connection soak (see [`run_soak`]).
struct SoakResult {
    idle_target: usize,
    connections_held: usize,
    active_requests: usize,
    active_ns_per_request: f64,
    active_p99_ns_base: f64,
    active_p99_ns_idle: f64,
    daemon_rss_delta_bytes: i64,
    rss_bytes_per_connection: f64,
}

/// Resident set size of `pid` in bytes (Linux `/proc`; `None` elsewhere).
fn rss_of(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    Some(line.split_whitespace().nth(1)?.parse::<u64>().ok()? * 1024)
}

/// The mostly-idle scaling soak: a daemon on the event-loop backend in
/// its own subprocess (the fd rlimit is per process, so splitting the
/// 2 × 10k socket endpoints across two processes is what lets a 10k run
/// fit), 10k connections opened and held idle, and the same small active
/// workload driven with and without the idle crowd. Records how many
/// connections were concurrently held, the daemon's RSS cost per idle
/// connection, and active-traffic ns/request + p99 under both conditions.
///
/// Needs `target/…/nomloc` next to this benchmark binary (the tier-1
/// `cargo build --release` in `scripts/check.sh` provides it); returns
/// `None` with a warning when it is missing rather than failing the
/// whole benchmark.
fn run_soak(idle_target: usize, active_requests: usize) -> Option<SoakResult> {
    let nomloc = std::env::current_exe().ok()?.with_file_name("nomloc");
    if !nomloc.exists() {
        eprintln!(
            "soak: skipped — {} not built (run `cargo build --release -p nomloc-cli` first)",
            nomloc.display()
        );
        return None;
    }
    let mut child = std::process::Command::new(&nomloc)
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--socket-backend",
            "event-loop",
            "--workers",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .ok()?;
    let addr = {
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("daemon announces its address");
        line.rsplit(' ')
            .next()
            .and_then(|a| a.trim().parse::<std::net::SocketAddr>().ok())
            .unwrap_or_else(|| panic!("unparseable daemon banner: {line:?}"))
    };

    // Cheap empty-burst requests: the soak measures the socket layer,
    // not the estimator.
    let venue = Venue::lab();
    let ap = venue.static_deployment()[0];
    let batch: Vec<Vec<CsiReport>> = (0..active_requests)
        .map(|_| {
            vec![CsiReport {
                site: ApSite::fixed(1, ap),
                burst: Vec::new(),
            }]
        })
        .collect();

    let baseline_config = nomloc_net::LoadgenConfig {
        connections: 4,
        ..nomloc_net::LoadgenConfig::default()
    };
    let base = nomloc_net::loadgen::run(addr, &baseline_config, &batch).expect("baseline run");

    let rss_before = rss_of(child.id());
    let soak_config = nomloc_net::LoadgenConfig {
        connections: 4,
        idle_connections: idle_target,
        ..nomloc_net::LoadgenConfig::default()
    };
    let soak = nomloc_net::loadgen::run(addr, &soak_config, &batch).expect("soak run");
    // RSS is sampled after the run; the daemon keeps the write buffers
    // and slab slots the crowd forced to exist, which is precisely the
    // steady-state cost the soak wants to price.
    let rss_after = rss_of(child.id());
    let _ = child.kill();
    let _ = child.wait();

    let delta = match (rss_before, rss_after) {
        (Some(b), Some(a)) => a as i64 - b as i64,
        _ => 0,
    };
    let held = soak.idle_held;
    Some(SoakResult {
        idle_target,
        connections_held: held,
        active_requests,
        active_ns_per_request: 1.0e9 / soak.throughput_rps(),
        active_p99_ns_base: base.latency_quantile(0.99).as_nanos() as f64,
        active_p99_ns_idle: soak.latency_quantile(0.99).as_nanos() as f64,
        daemon_rss_delta_bytes: delta,
        rss_bytes_per_connection: if held > 0 {
            delta.max(0) as f64 / held as f64
        } else {
            0.0
        },
    })
}

/// Sharded vs single-queue dispatch cost at one venue count (see
/// [`run_dispatch`]).
struct DispatchScale {
    live_venues: usize,
    connections: usize,
    requests: usize,
    queue_shards: usize,
    sharded_ns_per_request: f64,
    single_ns_per_request: f64,
    improvement_pct: f64,
    sharded_closed_rps: f64,
    single_closed_rps: f64,
    sharded_worst_worker_p99_ns: f64,
    single_worst_worker_p99_ns: f64,
    queue_steals: u64,
    enqueue_contention: u64,
    sharded_depth_peak: u64,
    single_depth_peak: u64,
}

/// Prices the admission plane itself: the sharded venue-affine queues
/// against the retained single-queue oracle (`queue_shards: 1`), per
/// venue count, both daemons live simultaneously and driven in
/// *alternating* min-of-rounds passes like [`run_venue_scales`].
///
/// Two traffic shapes per scale:
///
/// - **Pipelined** (8 connections, every request in flight at once): the
///   queue runs deep, which is exactly where the single queue's
///   head-venue coalescing scan goes quadratic — each same-venue pop
///   rescans the whole mixed backlog — while the sharded plane pops an
///   already-homogeneous venue FIFO in O(batch). This is the headline
///   `ns_per_request` comparison and the regression-gated number.
/// - **Closed-loop** (8 synchronous workers via
///   `LoadgenConfig::concurrency`): aggregate RPS plus the worst
///   per-worker p99, the fairness-sensitive view where one stalled
///   worker can't hide behind its siblings' throughput.
///
/// Requests are the soak's empty-burst cheapest-possible shape so
/// dispatch cost dominates solve cost, and `queue_capacity` is raised so
/// the pipelined flood is admitted in full (an `Overloaded` reply would
/// make the two sides answer different work). Both daemons must answer
/// every request and keep every micro-batch venue-homogeneous.
fn run_dispatch(counts: &[usize], requests_per_pass: usize) -> Vec<DispatchScale> {
    let venue = Venue::lab();
    let ap = venue.static_deployment()[0];
    let batch: Vec<Vec<CsiReport>> = (0..requests_per_pass)
        .map(|_| {
            vec![CsiReport {
                site: ApSite::fixed(1, ap),
                burst: Vec::new(),
            }]
        })
        .collect();

    counts
        .iter()
        .map(|&live| {
            let spawn_side = |queue_shards: usize| {
                let server = LocalizationServer::new(venue.plan.boundary().clone()).with_workers(2);
                let config = nomloc_net::DaemonConfig {
                    max_wait: std::time::Duration::ZERO,
                    queue_capacity: requests_per_pass.max(1024) * 2,
                    queue_shards,
                    batchers: 2,
                    max_batch: 64,
                    ..nomloc_net::DaemonConfig::default()
                };
                let handle = nomloc_net::spawn(server, config, "127.0.0.1:0")
                    .expect("spawn dispatch-bench daemon");
                for id in 1..live as u64 {
                    nomloc_net::admin::onboard(
                        handle.local_addr(),
                        &WireVenue::from_venue(id, &venue),
                    )
                    .expect("onboard dispatch-bench venue");
                }
                handle
            };
            let sharded = spawn_side(nomloc_net::DaemonConfig::default().queue_shards);
            let single = spawn_side(1);
            let venues: Vec<u64> = (0..live as u64).collect();
            let pipelined = nomloc_net::LoadgenConfig {
                connections: 8,
                venues: venues.clone(),
                zipf_s: 1.0,
                zipf_seed: 7,
                ..nomloc_net::LoadgenConfig::default()
            };
            let closed = nomloc_net::LoadgenConfig {
                concurrency: 8,
                venues,
                zipf_s: 1.0,
                zipf_seed: 7,
                ..nomloc_net::LoadgenConfig::default()
            };

            let mut best = [f64::INFINITY; 2]; // [sharded, single] pipelined ns/req
            let mut best_rps = [0.0f64; 2];
            let mut best_p99 = [f64::INFINITY; 2];
            for _ in 0..5 {
                for (i, handle) in [&sharded, &single].into_iter().enumerate() {
                    let report = nomloc_net::loadgen::run(handle.local_addr(), &pipelined, &batch)
                        .expect("pipelined dispatch pass");
                    assert_eq!(
                        report.ok_count(),
                        batch.len(),
                        "pipelined dispatch pass must answer every request"
                    );
                    best[i] = best[i].min(1.0e9 / report.throughput_rps());
                    let report = nomloc_net::loadgen::run(handle.local_addr(), &closed, &batch)
                        .expect("closed-loop dispatch pass");
                    assert_eq!(
                        report.ok_count(),
                        batch.len(),
                        "closed-loop dispatch pass must answer every request"
                    );
                    if report.throughput_rps() > best_rps[i] {
                        best_rps[i] = report.throughput_rps();
                        best_p99[i] = report
                            .per_worker_quantile(0.99)
                            .iter()
                            .map(|d| d.as_nanos() as f64)
                            .fold(0.0, f64::max);
                    }
                }
            }

            let sharded_counters = sharded.stats_snapshot().counters;
            let single_counters = single.stats_snapshot().counters;
            for (side, c) in [("sharded", &sharded_counters), ("single", &single_counters)] {
                assert_eq!(
                    c.batches_mixed, 0,
                    "{side} dispatch bench formed a mixed batch"
                );
            }
            assert_eq!(
                single_counters.queue_steals, 0,
                "the single-queue oracle has nothing to steal from"
            );
            let queue_shards = nomloc_net::DaemonConfig::default().queue_shards;
            let sharded_depth_peak = sharded.shutdown().queue_depth_peak;
            let single_depth_peak = single.shutdown().queue_depth_peak;
            DispatchScale {
                live_venues: live,
                connections: 8,
                requests: batch.len(),
                queue_shards,
                sharded_ns_per_request: best[0],
                single_ns_per_request: best[1],
                improvement_pct: (best[1] / best[0] - 1.0) * 100.0,
                sharded_closed_rps: best_rps[0],
                single_closed_rps: best_rps[1],
                sharded_worst_worker_p99_ns: best_p99[0],
                single_worst_worker_p99_ns: best_p99[1],
                queue_steals: sharded_counters.queue_steals,
                enqueue_contention: sharded_counters.enqueue_contention,
                sharded_depth_peak,
                single_depth_peak,
            }
        })
        .collect()
}

/// Per-request serving cost with a given number of live venues (see
/// [`run_venue_scales`]).
struct VenueScale {
    live_venues: usize,
    requests: usize,
    ns_per_request: f64,
    p99_ns: f64,
    batches_homogeneous: u64,
    batches_mixed: u64,
}

/// Spawns one in-process daemon per venue count, onboards `live - 1`
/// extra venues on each over the TCP admin plane, then drives a
/// zipf(1.0)-over-venues workload against the scales in *alternating*
/// passes — min ns/request over the rounds, so slow machine drift hits
/// every scale equally (the same discipline as `lpcmp::paired_min_ns`).
/// Each scale reports its best pass plus the daemon's cumulative
/// batch-composition counters (every micro-batch across every round must
/// stay venue-homogeneous).
///
/// Every onboarded venue carries the *Lab* geometry, so per-request solve
/// work is identical at every venue count — the measured delta between
/// 1 and N live venues is purely registry-resolution and venue-sharding
/// overhead, which is the thing this section prices. The daemons run with
/// `max_wait: ZERO` so a micro-batch ships as soon as the same-venue run
/// at the queue head is exhausted: with the default 500 µs flush timer,
/// scattering traffic over N venues multiplies *timer stalls* (each
/// venue-homogeneous batch waits out the full timer), which would swamp
/// the per-request cost this section is after.
fn run_venue_scales(counts: &[usize], batch: &[Vec<CsiReport>]) -> Vec<VenueScale> {
    struct LiveScale {
        live_venues: usize,
        handle: nomloc_net::DaemonHandle,
        config: nomloc_net::LoadgenConfig,
        best_ns: f64,
        best_p99: f64,
    }
    let venue = Venue::lab();
    let mut scales: Vec<LiveScale> = counts
        .iter()
        .map(|&live| {
            let server = LocalizationServer::new(venue.plan.boundary().clone()).with_workers(2);
            let config = nomloc_net::DaemonConfig {
                max_wait: std::time::Duration::ZERO,
                ..nomloc_net::DaemonConfig::default()
            };
            let handle =
                nomloc_net::spawn(server, config, "127.0.0.1:0").expect("spawn venue-scale daemon");
            let addr = handle.local_addr();
            let mut venues: Vec<u64> = vec![0];
            for id in 1..live as u64 {
                nomloc_net::admin::onboard(addr, &WireVenue::from_venue(id, &venue))
                    .expect("onboard bench venue");
                venues.push(id);
            }
            let config = nomloc_net::LoadgenConfig {
                connections: 8,
                venues,
                zipf_s: 1.0,
                zipf_seed: 7,
                ..nomloc_net::LoadgenConfig::default()
            };
            LiveScale {
                live_venues: live,
                handle,
                config,
                best_ns: f64::INFINITY,
                best_p99: f64::INFINITY,
            }
        })
        .collect();
    let venue_rounds = 5;
    for _ in 0..venue_rounds {
        for scale in scales.iter_mut() {
            let report = nomloc_net::loadgen::run(scale.handle.local_addr(), &scale.config, batch)
                .expect("venue-scale loadgen");
            assert_eq!(
                report.ok_count(),
                batch.len(),
                "venue-scale run must answer every request"
            );
            let ns = 1.0e9 / report.throughput_rps();
            if ns < scale.best_ns {
                scale.best_ns = ns;
                scale.best_p99 = report.latency_quantile(0.99).as_nanos() as f64;
            }
        }
    }
    scales
        .into_iter()
        .map(|scale| {
            let counters = scale.handle.stats_snapshot().counters;
            assert_eq!(
                counters.batches_mixed, 0,
                "micro-batches must stay venue-homogeneous"
            );
            scale.handle.shutdown();
            VenueScale {
                live_venues: scale.live_venues,
                requests: batch.len(),
                ns_per_request: scale.best_ns,
                p99_ns: scale.best_p99,
                batches_homogeneous: counters.batches_homogeneous,
                batches_mixed: counters.batches_mixed,
            }
        })
        .collect()
}

/// Sessioned vs stateless serving cost (see [`run_sessions`]).
struct SessionCost {
    requests: usize,
    stateless_ns_per_request: f64,
    sessioned_ns_per_request: f64,
    overhead_pct: f64,
    smoothed_replies: usize,
}

/// Prices the session plane: the same workload driven stateless and with
/// one session per connection, in alternating min-of-rounds passes
/// against a single daemon. The sessioned side pays the tracker push,
/// the localizability bound lookup, and the larger reply frame on every
/// request — the headline number is that overhead as a percentage.
fn run_sessions(batch: &[Vec<CsiReport>]) -> SessionCost {
    let venue = Venue::lab();
    let server = LocalizationServer::new(venue.plan.boundary().clone()).with_workers(2);
    let config = nomloc_net::DaemonConfig {
        max_wait: std::time::Duration::ZERO,
        ..nomloc_net::DaemonConfig::default()
    };
    let handle = nomloc_net::spawn(server, config, "127.0.0.1:0").expect("spawn session daemon");
    let addr = handle.local_addr();
    let stateless = nomloc_net::LoadgenConfig {
        connections: 8,
        ..nomloc_net::LoadgenConfig::default()
    };
    let sessioned = nomloc_net::LoadgenConfig {
        connections: 8,
        sessions: true,
        ..nomloc_net::LoadgenConfig::default()
    };
    let mut stateless_ns = f64::INFINITY;
    let mut sessioned_ns = f64::INFINITY;
    let mut smoothed_replies = 0usize;
    for _ in 0..5 {
        let base = nomloc_net::loadgen::run(addr, &stateless, batch).expect("stateless pass");
        assert_eq!(
            base.ok_count(),
            batch.len(),
            "stateless pass answers everything"
        );
        stateless_ns = stateless_ns.min(1.0e9 / base.throughput_rps());
        let tracked = nomloc_net::loadgen::run(addr, &sessioned, batch).expect("sessioned pass");
        assert_eq!(
            tracked.ok_count(),
            batch.len(),
            "sessioned pass answers everything"
        );
        sessioned_ns = sessioned_ns.min(1.0e9 / tracked.throughput_rps());
        smoothed_replies = tracked.session_deviations().iter().map(|(_, n, _)| n).sum();
    }
    handle.shutdown();
    SessionCost {
        requests: batch.len(),
        stateless_ns_per_request: stateless_ns,
        sessioned_ns_per_request: sessioned_ns,
        overhead_pct: (sessioned_ns / stateless_ns - 1.0) * 100.0,
        smoothed_replies,
    }
}

/// The loadgen-shaped loopback workload: each request carries one CSI
/// report per static AP of the Lab venue, for a different test site.
/// Drawn from the shared [`synthetic_workload`] builder in
/// `nomloc_core::scenario` — the same traffic the CLI's loopback commands
/// generate, so numbers here describe the same bytes users replay.
fn workload(n: usize, packets: usize) -> Vec<Vec<CsiReport>> {
    synthetic_workload(&Venue::lab(), n, packets, 0).1
}

/// Minimum wall-clock ns of `f` over `rounds` passes.
fn min_ns(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// The pre-optimization burst PDP, replicated stage for stage: a fresh
/// windowed-CSI vector per packet, the iterative (unplanned) IFFT kernel
/// into a per-burst scratch, a materialized per-packet tap-power vector
/// (the old path built a full `DelayProfile` and then asked for its
/// peak), a fresh per-packet list, and a median over a sorted copy.
fn pdp_burst_naive(est: &PdpEstimator, burst: &[CsiSnapshot]) -> Option<f64> {
    let mut scratch: Vec<Complex> = Vec::new();
    let per_packet: Vec<f64> = burst
        .iter()
        .map(|s| {
            let n = s.h.len();
            let tapered = est.window.apply(&s.h);
            fft::ifft_padded_into_unplanned(&tapered, est.min_taps, &mut scratch);
            let gain = scratch.len() as f64 / n as f64;
            let powers: Vec<f64> = scratch.iter().map(|h| (*h * gain).norm_sq()).collect();
            // `DelayProfile::peak`'s scan: max_by over total_cmp.
            powers
                .iter()
                .copied()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(_, p)| p)
                .expect("padded IFFT output is never empty")
        })
        .collect();
    nomloc_dsp::stats::median(&per_packet)
}

/// Builds the reply frame a request's solve outcome encodes to.
fn response_of(
    request_id: u64,
    result: Result<nomloc_core::LocationEstimate, nomloc_core::EstimateError>,
) -> LocateResponse {
    match result {
        Ok(est) => LocateResponse {
            request_id,
            outcome: Ok(WireEstimate::from_core(&est)),
        },
        Err(e) => LocateResponse {
            request_id,
            outcome: Err(ErrorReply {
                code: ErrorCode::from_estimate_error(&e),
                message: e.to_string(),
            }),
        },
    }
}

fn main() {
    let n_requests = if quick_mode() { 32 } else { 64 };
    let requests = workload(n_requests, 2);
    let n = requests.len() as f64;

    let venue = Venue::lab();
    let area = venue.plan.boundary().clone();
    let server = LocalizationServer::new(area.clone()).with_workers(1);
    let estimator = SpEstimator::new();
    let pdp = PdpEstimator::new();

    // Pre-encoded request frames: the bytes a loadgen connection writes.
    let frames: Vec<Vec<u8>> = requests
        .iter()
        .enumerate()
        .map(|(i, reports)| {
            wire::frame_to_vec(&Frame::LocateRequest(LocateRequest {
                request_id: i as u64,
                deadline_us: 0,
                venue_id: 0,
                session_id: 0,
                reports: reports.iter().map(WireReport::from_core).collect(),
            }))
        })
        .collect();

    // Intermediate products for the per-stage rows, computed once.
    let readings_all: Vec<_> = requests
        .iter()
        .map(|r| server.extract_readings(r))
        .collect();
    let judgements_all: Vec<_> = readings_all.iter().map(|r| server.judge(r)).collect();
    let response_frames: Vec<Frame> = judgements_all
        .iter()
        .enumerate()
        .map(|(i, j)| Frame::LocateResponse(response_of(i as u64, estimator.estimate(j, &area))))
        .collect();

    // --- Stage attribution: ns per request through each pipeline stage.
    let stage_rounds = rounds(100);
    let decode_ns = min_ns(stage_rounds, || {
        for bytes in &frames {
            let (frame, _) = wire::decode_frame(bytes).expect("benchmark frame decodes");
            if let Frame::LocateRequest(req) = frame {
                black_box(req.to_core_reports().expect("benchmark reports are valid"));
            }
        }
    }) / n;
    let pdp_ns = min_ns(stage_rounds, || {
        for reports in &requests {
            black_box(server.extract_readings(reports));
        }
    }) / n;
    let constraints_ns = min_ns(stage_rounds, || {
        for readings in &readings_all {
            black_box(server.judge(readings));
        }
    }) / n;
    let lp_ns = min_ns(stage_rounds, || {
        for judgements in &judgements_all {
            black_box(estimator.estimate(judgements, &area).ok());
        }
    }) / n;
    let pool = BufferPool::new(8);
    let encode_ns = min_ns(stage_rounds, || {
        for frame in &response_frames {
            let (mut buf, _) = pool.get();
            wire::encode_frame(frame, &mut buf);
            black_box(buf.len());
            pool.put(buf);
        }
    }) / n;

    // --- Planned vs iterative FFT kernel, 256-point (the default
    // serving transform size for Intel 5300 CSI padded to 256 taps).
    let template: Vec<Complex> = (0..256)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.113).cos()))
        .collect();
    let mut planned_buf = template.clone();
    let mut naive_buf = template.clone();
    let (fft_planned_ns, fft_naive_ns) = lpcmp::paired_min_ns(
        rounds(300),
        128,
        || {
            planned_buf.copy_from_slice(&template);
            fft::fft_radix2(black_box(&mut planned_buf), false);
        },
        || {
            naive_buf.copy_from_slice(&template);
            fft::fft_radix2_unplanned(black_box(&mut naive_buf), false);
        },
    );

    // --- PDP extraction at 64-point transforms: planned + scratch
    // against the pre-plan allocating path, per burst.
    let est64 = PdpEstimator {
        min_taps: 64,
        ..PdpEstimator::default()
    };
    let all_reports: Vec<&CsiReport> = requests.iter().flatten().collect();
    let mut scratch = PdpScratch::new();
    let (pdp64_planned_ns, pdp64_naive_ns) = lpcmp::paired_min_ns(
        rounds(200),
        1,
        || {
            for r in &all_reports {
                black_box(est64.pdp_of_burst_with(&r.burst, &mut scratch));
            }
        },
        || {
            for r in &all_reports {
                black_box(pdp_burst_naive(&est64, &r.burst));
            }
        },
    );
    let bursts = all_reports.len() as f64;
    let (pdp64_planned_ns, pdp64_naive_ns) = (pdp64_planned_ns / bursts, pdp64_naive_ns / bursts);

    // --- Batched SoA PDP against the per-packet planned kernel, at the
    // serving shape: each request's reports extracted together (4 APs ×
    // 2 packets = 8 lockstep lanes per dispatch) versus the PR-5 hot path
    // replicated exactly — the planned scalar kernel per snapshot with
    // reused scratch, median per burst. Both sides allocation-free in
    // steady state, so the delta is purely the lockstep traversal.
    let mut batched_scratch = PdpScratch::new();
    let mut scalar_scratch = PdpScratch::new();
    let mut batched_out: Vec<Option<f64>> = Vec::new();
    let mut scalar_peaks: Vec<f64> = Vec::new();
    let (pdp_batched_ns, pdp_per_packet_ns) = lpcmp::paired_min_ns(
        rounds(200),
        1,
        || {
            for reports in &requests {
                let bursts: Vec<&[CsiSnapshot]> =
                    reports.iter().map(|r| r.burst.as_slice()).collect();
                pdp.pdp_of_bursts_with(&bursts, &mut batched_scratch, &mut batched_out);
                black_box(batched_out.len());
            }
        },
        || {
            for reports in &requests {
                for r in reports {
                    scalar_peaks.clear();
                    scalar_peaks.extend(
                        r.burst
                            .iter()
                            .map(|s| pdp.pdp_of_snapshot_with(s, &mut scalar_scratch)),
                    );
                    black_box(nomloc_dsp::stats::median_in_place(&mut scalar_peaks));
                }
            }
        },
    );
    let (pdp_batched_ns, pdp_per_packet_ns) = (pdp_batched_ns / n, pdp_per_packet_ns / n);

    // --- Pooled vs fresh reply encode, per frame.
    let (encode_pooled_ns, encode_fresh_ns) = lpcmp::paired_min_ns(
        rounds(300),
        1,
        || {
            for frame in &response_frames {
                let (mut buf, _) = pool.get();
                wire::encode_frame(frame, &mut buf);
                black_box(buf.len());
                pool.put(buf);
            }
        },
        || {
            for frame in &response_frames {
                black_box(wire::frame_to_vec(frame));
            }
        },
    );
    let (encode_pooled_ns, encode_fresh_ns) = (encode_pooled_ns / n, encode_fresh_ns / n);

    // --- End to end: decode → PDP → constraints → LP → encode, the
    // optimized pipeline against the pre-optimization replica.
    let e2e_rounds = rounds(100);
    let (e2e_optimized_ns, e2e_naive_ns) = lpcmp::paired_min_ns(
        e2e_rounds,
        1,
        || {
            for bytes in &frames {
                let (frame, _) = wire::decode_frame(bytes).expect("benchmark frame decodes");
                let Frame::LocateRequest(req) = frame else {
                    unreachable!("workload frames are requests");
                };
                let reports = req.to_core_reports().expect("benchmark reports are valid");
                let readings = server.extract_readings(&reports);
                let judgements = server.judge(&readings);
                let response = response_of(req.request_id, estimator.estimate(&judgements, &area));
                let (mut buf, _) = pool.get();
                wire::encode_frame(&Frame::LocateResponse(response), &mut buf);
                black_box(buf.len());
                pool.put(buf);
            }
        },
        || {
            for bytes in &frames {
                let (frame, _) = wire::decode_frame(bytes).expect("benchmark frame decodes");
                let Frame::LocateRequest(req) = frame else {
                    unreachable!("workload frames are requests");
                };
                let reports = req.to_core_reports().expect("benchmark reports are valid");
                let readings: Vec<_> = reports
                    .iter()
                    .filter_map(|r| {
                        let value = pdp_burst_naive(&pdp, &r.burst)?;
                        nomloc_core::PdpReading::try_new(r.site, value).ok()
                    })
                    .collect();
                let judgements = server.judge(&readings);
                let response = response_of(req.request_id, estimator.estimate(&judgements, &area));
                black_box(wire::frame_to_vec(&Frame::LocateResponse(response)));
            }
        },
    );
    let (e2e_optimized_ns, e2e_naive_ns) = (e2e_optimized_ns / n, e2e_naive_ns / n);

    let fft_speedup = fft_naive_ns / fft_planned_ns;
    let pdp_batched_speedup = pdp_per_packet_ns / pdp_batched_ns;
    let pdp64_speedup = pdp64_naive_ns / pdp64_planned_ns;
    let encode_speedup = encode_fresh_ns / encode_pooled_ns;
    let e2e_speedup = e2e_naive_ns / e2e_optimized_ns;

    // --- Mostly-idle connection scaling on the event-loop backend.
    let (idle_target, soak_requests) = if quick_mode() {
        (2_000, 200)
    } else {
        (10_000, 400)
    };
    let soak = run_soak(idle_target, soak_requests);

    // --- Multi-venue fleet scaling: per-request cost at 1, 100, and
    // (full mode) 1000 live venues under zipf-over-venues traffic.
    let venue_counts: &[usize] = if quick_mode() {
        &[1, 100]
    } else {
        &[1, 100, 1000]
    };
    let venue_batch = workload(if quick_mode() { 240 } else { 480 }, 2);
    let venue_scales = run_venue_scales(venue_counts, &venue_batch);

    // --- Dispatch plane: sharded venue-affine queues vs the single-queue
    // oracle, at 1 and 100 live venues.
    let dispatch_requests = if quick_mode() { 12_000 } else { 16_000 };
    let dispatch_scales = run_dispatch(&[1, 100], dispatch_requests);

    // --- Session plane: per-request cost of stateful tracking.
    let sessions = run_sessions(&venue_batch);
    let sessions_json = format!(
        "{{\"requests\": {}, \"stateless_ns_per_request\": {:.1}, \"sessioned_ns_per_request\": {:.1}, \"overhead_pct\": {:.2}, \"smoothed_replies\": {}}}",
        sessions.requests,
        sessions.stateless_ns_per_request,
        sessions.sessioned_ns_per_request,
        sessions.overhead_pct,
        sessions.smoothed_replies,
    );
    let venues_json: Vec<String> = venue_scales
        .iter()
        .map(|s| {
            format!(
                "{{\"live_venues\": {}, \"requests\": {}, \"ns_per_request\": {:.1}, \"p99_ns\": {:.0}, \"batches_homogeneous\": {}, \"batches_mixed\": {}}}",
                s.live_venues,
                s.requests,
                s.ns_per_request,
                s.p99_ns,
                s.batches_homogeneous,
                s.batches_mixed,
            )
        })
        .collect();
    let venues_json = format!("[{}]", venues_json.join(", "));
    let dispatch_json: Vec<String> = dispatch_scales
        .iter()
        .map(|d| {
            format!(
                "{{\"live_venues\": {}, \"connections\": {}, \"requests\": {}, \"queue_shards\": {}, \"sharded_ns_per_request\": {:.1}, \"single_ns_per_request\": {:.1}, \"improvement_pct\": {:.2}, \"sharded_closed_rps\": {:.0}, \"single_closed_rps\": {:.0}, \"sharded_worst_worker_p99_ns\": {:.0}, \"single_worst_worker_p99_ns\": {:.0}, \"queue_steals\": {}, \"enqueue_contention\": {}, \"sharded_depth_peak\": {}, \"single_depth_peak\": {}}}",
                d.live_venues,
                d.connections,
                d.requests,
                d.queue_shards,
                d.sharded_ns_per_request,
                d.single_ns_per_request,
                d.improvement_pct,
                d.sharded_closed_rps,
                d.single_closed_rps,
                d.sharded_worst_worker_p99_ns,
                d.single_worst_worker_p99_ns,
                d.queue_steals,
                d.enqueue_contention,
                d.sharded_depth_peak,
                d.single_depth_peak,
            )
        })
        .collect();
    let dispatch_json = format!("[{}]", dispatch_json.join(", "));
    let soak_json = match &soak {
        Some(s) => format!(
            "{{\"backend\": \"event-loop\", \"idle_target\": {}, \"connections_held\": {}, \"active_requests\": {}, \"active_ns_per_request\": {:.1}, \"active_p99_ns_base\": {:.0}, \"active_p99_ns_idle\": {:.0}, \"idle_p99_ratio\": {:.3}, \"daemon_rss_delta_bytes\": {}, \"rss_bytes_per_connection\": {:.1}}}",
            s.idle_target,
            s.connections_held,
            s.active_requests,
            s.active_ns_per_request,
            s.active_p99_ns_base,
            s.active_p99_ns_idle,
            s.active_p99_ns_idle / s.active_p99_ns_base.max(1.0),
            s.daemon_rss_delta_bytes,
            s.rss_bytes_per_connection,
        ),
        None => "null".to_string(),
    };

    let json = format!(
        "{{\n  \"requests\": {n_requests},\n  \"stages\": {{\"decode_ns_per_request\": {decode_ns:.1}, \"pdp_ns_per_request\": {pdp_ns:.1}, \"constraints_ns_per_request\": {constraints_ns:.1}, \"lp_ns_per_request\": {lp_ns:.1}, \"encode_ns_per_request\": {encode_ns:.1}}},\n  \"fft\": {{\"points\": 256, \"planned_ns\": {fft_planned_ns:.1}, \"naive_ns\": {fft_naive_ns:.1}, \"speedup\": {fft_speedup:.4}}},\n  \"pdp_batched\": {{\"batched_ns_per_request\": {pdp_batched_ns:.1}, \"per_packet_ns_per_request\": {pdp_per_packet_ns:.1}, \"speedup\": {pdp_batched_speedup:.4}}},\n  \"pdp_64\": {{\"planned_ns_per_burst\": {pdp64_planned_ns:.1}, \"unplanned_ns_per_burst\": {pdp64_naive_ns:.1}, \"speedup\": {pdp64_speedup:.4}}},\n  \"encode\": {{\"pooled_ns_per_reply\": {encode_pooled_ns:.1}, \"fresh_ns_per_reply\": {encode_fresh_ns:.1}, \"speedup\": {encode_speedup:.4}}},\n  \"end_to_end\": {{\"optimized_ns_per_request\": {e2e_optimized_ns:.1}, \"naive_ns_per_request\": {e2e_naive_ns:.1}, \"speedup\": {e2e_speedup:.4}}},\n  \"soak\": {soak_json},\n  \"venues\": {venues_json},\n  \"dispatch\": {dispatch_json},\n  \"sessions\": {sessions_json}\n}}\n"
    );

    println!(
        "serving stages (ns/request): decode {decode_ns:.0} | pdp {pdp_ns:.0} | \
         constraints {constraints_ns:.0} | lp {lp_ns:.0} | encode {encode_ns:.0}"
    );
    println!(
        "fft 256-pt: planned {fft_planned_ns:.1} ns, naive {fft_naive_ns:.1} ns — \
         speedup {fft_speedup:.3}x"
    );
    println!(
        "pdp batched: {pdp_batched_ns:.0} ns/req batched SoA, {pdp_per_packet_ns:.0} ns/req \
         per-packet planned — speedup {pdp_batched_speedup:.3}x"
    );
    println!(
        "pdp 64-pt: planned {pdp64_planned_ns:.0} ns/burst, unplanned {pdp64_naive_ns:.0} \
         ns/burst — speedup {pdp64_speedup:.3}x"
    );
    println!(
        "encode: pooled {encode_pooled_ns:.0} ns/reply, fresh {encode_fresh_ns:.0} ns/reply — \
         speedup {encode_speedup:.3}x"
    );
    println!(
        "end-to-end: optimized {e2e_optimized_ns:.0} ns/req, naive {e2e_naive_ns:.0} ns/req — \
         speedup {e2e_speedup:.3}x"
    );
    if let Some(s) = &soak {
        println!(
            "soak: {} idle connections held on the event-loop backend — active {:.0} ns/req, \
             p99 {:.2} ms idle vs {:.2} ms base ({:.2}x), daemon RSS {:+} KiB ({:.0} B/conn)",
            s.connections_held,
            s.active_ns_per_request,
            s.active_p99_ns_idle / 1e6,
            s.active_p99_ns_base / 1e6,
            s.active_p99_ns_idle / s.active_p99_ns_base.max(1.0),
            s.daemon_rss_delta_bytes / 1024,
            s.rss_bytes_per_connection,
        );
    }

    for d in &dispatch_scales {
        println!(
            "dispatch: {} venues, {} conns — sharded {:.0} ns/req vs single-queue {:.0} ns/req \
             ({:+.1}%), closed-loop {:.0} vs {:.0} rps, worst worker p99 {:.2} vs {:.2} ms, \
             {} steals, {} contended enqueues, depth peak {} vs {}",
            d.live_venues,
            d.connections,
            d.sharded_ns_per_request,
            d.single_ns_per_request,
            d.improvement_pct,
            d.sharded_closed_rps,
            d.single_closed_rps,
            d.sharded_worst_worker_p99_ns / 1e6,
            d.single_worst_worker_p99_ns / 1e6,
            d.queue_steals,
            d.enqueue_contention,
            d.sharded_depth_peak,
            d.single_depth_peak,
        );
    }

    for s in &venue_scales {
        println!(
            "venues: {} live — {:.0} ns/req, p99 {:.2} ms, batches homogeneous {} / mixed {}",
            s.live_venues,
            s.ns_per_request,
            s.p99_ns / 1e6,
            s.batches_homogeneous,
            s.batches_mixed,
        );
    }
    if let (Some(one), Some(hundred)) = (
        venue_scales.iter().find(|s| s.live_venues == 1),
        venue_scales.iter().find(|s| s.live_venues == 100),
    ) {
        println!(
            "venues: 100-venue per-request cost is {:+.1}% vs single-venue \
             ({:.0} ns vs {:.0} ns)",
            (hundred.ns_per_request / one.ns_per_request - 1.0) * 100.0,
            hundred.ns_per_request,
            one.ns_per_request,
        );
    }

    println!(
        "sessions: sessioned {:.0} ns/req vs stateless {:.0} ns/req — overhead {:+.2}% \
         ({} smoothed replies)",
        sessions.sessioned_ns_per_request,
        sessions.stateless_ns_per_request,
        sessions.overhead_pct,
        sessions.smoothed_replies,
    );

    let path = std::env::var("NOMLOC_BENCH_SERVING_JSON")
        .unwrap_or_else(|_| "BENCH_serving.json".to_string());
    std::fs::write(&path, &json).expect("write BENCH_serving.json");
    println!("wrote {path}");
}
