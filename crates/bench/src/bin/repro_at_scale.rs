//! At-scale experiment beyond the paper's testbed: the cross-shaped Mall
//! venue (≈ 420 m², six APs, five public nomadic sites, fourteen test
//! sites). Shows the pipeline holding up at C(11, 2) = 55 constraints per
//! round, and the nomadic gains persisting in a venue 4× the Lab.

use nomloc_bench::{header, print_row, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    header("At scale — Mall (cross-shaped wing, 6 APs)");
    let venue = Venue::mall();
    print_row("area (m²)", venue.plan.boundary().area());
    print_row("test sites", venue.n_test_sites() as f64);

    let st = standard_campaign(Venue::mall(), Deployment::Static).run();
    let no = standard_campaign(Venue::mall(), Deployment::nomadic(NOMADIC_STEPS)).run();
    let fleet = standard_campaign(
        Venue::mall(),
        Deployment::Fleet {
            nomads: 3,
            steps: NOMADIC_STEPS,
        },
    )
    .run();

    println!();
    println!(
        "{:>22}  {:>12}  {:>12}  {:>12}",
        "deployment", "mean_err_m", "slv_m2", "err_90th_m"
    );
    for (label, r) in [
        ("static (6 APs)", &st),
        ("1 nomadic", &no),
        ("3-nomad fleet", &fleet),
    ] {
        println!(
            "{label:>22}  {:>12.3}  {:>12.3}  {:>12.3}",
            r.mean_error(),
            r.slv(),
            r.error_cdf().quantile(0.9)
        );
    }
}
