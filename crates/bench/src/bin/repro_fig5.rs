//! Reproduces Fig. 5: feasible vs infeasible constraint sets, and the
//! relaxation's repair. Builds a consistent judgement set (non-empty
//! feasible polygon) and an over-constrained one (empty intersection),
//! then shows Eq. 19 recovering a solution by sacrificing the
//! lowest-weight constraint.
//!
//! Writes `fig5_feasible.svg` / `fig5_relaxed.svg` when `NOMLOC_SVG_DIR`
//! is set.

use nomloc_bench::{header, print_row};
use nomloc_core::constraints::judgement_constraints;
use nomloc_core::proximity::{ApSite, ProximityJudgement};
use nomloc_core::SpEstimator;
use nomloc_geometry::{HalfPlane, Point, Polygon};
use nomloc_lp::center;
use nomloc_report::SceneBuilder;
use nomloc_rfsim::FloorPlan;

fn judgement(near: Point, far: Point, w: f64) -> ProximityJudgement {
    ProximityJudgement {
        near: ApSite::fixed(0, near),
        far: ApSite::fixed(1, far),
        weight: w,
    }
}

fn main() {
    header("Fig. 5 — feasibility and relaxation");
    let area = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 8.0));
    let truth = Point::new(3.0, 3.0);
    let aps = [
        Point::new(1.0, 1.0),
        Point::new(9.0, 1.0),
        Point::new(9.0, 7.0),
        Point::new(1.0, 7.0),
    ];

    // Consistent set: all judgements match an object at `truth`.
    let mut consistent = Vec::new();
    for i in 0..aps.len() {
        for j in (i + 1)..aps.len() {
            let (near, far) = if truth.distance_sq(aps[i]) <= truth.distance_sq(aps[j]) {
                (aps[i], aps[j])
            } else {
                (aps[j], aps[i])
            };
            consistent.push(judgement(near, far, 0.9));
        }
    }
    let hps: Vec<HalfPlane> = judgement_constraints(&consistent)
        .iter()
        .map(|c| c.halfplane)
        .collect();
    let region = center::feasible_region(&hps, &area).expect("consistent set is feasible");
    print_row("feasible region area (consistent, m²)", region.area());
    let est = SpEstimator::new().estimate(&consistent, &area).unwrap();
    print_row("relaxation cost (consistent)", est.relaxation_cost);
    print_row("estimate error (m)", est.position.distance(truth));

    // Over-constrained: a wrong judgement against a nomadic site N makes
    // the system strictly infeasible. Truth gives "closer to AP1 than AP2"
    // (x ≤ 5); the erroneous "closer to AP2 than N(4,1)" demands x ≥ 6.5.
    let nomadic_site = Point::new(4.0, 1.0);
    let mut contradicted = consistent.clone();
    contradicted.push(ProximityJudgement {
        near: ApSite::fixed(1, aps[1]),
        far: ApSite::nomadic(0, 1, nomadic_site),
        weight: 0.55,
    });
    let hps_bad: Vec<HalfPlane> = judgement_constraints(&contradicted)
        .iter()
        .map(|c| c.halfplane)
        .collect();
    println!(
        "over-constrained intersection empty: {}",
        center::feasible_region(&hps_bad, &area).is_none()
    );
    let est_bad = SpEstimator::new().estimate(&contradicted, &area).unwrap();
    print_row("relaxation cost (contradicted)", est_bad.relaxation_cost);
    print_row(
        "estimate error after relaxation (m)",
        est_bad.position.distance(truth),
    );

    if let Some(dir) = nomloc_report::svg_dir_from_env() {
        let plan = FloorPlan::builder(area.clone()).build();
        let scene = SceneBuilder::new(&plan)
            .region(region)
            .object(truth, "truth")
            .estimate(est.position, "estimate")
            .ap(aps[0], "AP1")
            .ap(aps[1], "AP2")
            .ap(aps[2], "AP3")
            .ap(aps[3], "AP4")
            .render();
        match nomloc_report::write_svg(&dir, "fig5_feasible", &scene) {
            Ok(()) => println!("wrote {}/fig5_feasible.svg", dir.display()),
            Err(e) => eprintln!("svg write failed: {e}"),
        }
        let scene = SceneBuilder::new(&plan)
            .object(truth, "truth")
            .estimate(est_bad.position, "relaxed estimate")
            .ap(aps[0], "AP1")
            .ap(aps[1], "AP2")
            .ap(aps[2], "AP3")
            .ap(aps[3], "AP4")
            .render();
        match nomloc_report::write_svg(&dir, "fig5_relaxed", &scene) {
            Ok(()) => println!("wrote {}/fig5_relaxed.svg", dir.display()),
            Err(e) => eprintln!("svg write failed: {e}"),
        }
    }
}
