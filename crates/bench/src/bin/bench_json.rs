//! Machine-readable LP benchmark: paired min-of-rounds timings for the
//! flat-tableau workspace solver against the retained dense reference, and
//! for warm-cache serving against the uncached per-query loop, written as
//! `BENCH_lp.json` (in the current directory, or `$NOMLOC_BENCH_JSON`).
//!
//! Every figure is a min-of-rounds over alternating passes — see
//! `nomloc_bench::lpcmp::paired_min_ns` — so slow drift hits both sides
//! equally and the minimum approximates the noise-free cost.

use nomloc_bench::{lpcmp, rounds, serving};
use nomloc_core::scenario::Venue;
use nomloc_core::{LocalizationServer, SpEstimator};
use nomloc_lp::center;
use nomloc_lp::simplex::SimplexWorkspace;

/// One reference-vs-workspace comparison row.
struct Row {
    label: String,
    constraints: usize,
    reference_ns: f64,
    workspace_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.workspace_ns
    }

    fn json(&self) -> String {
        format!(
            "{{\"label\": \"{}\", \"constraints\": {}, \"reference_ns\": {:.1}, \"workspace_ns\": {:.1}, \"speedup\": {:.4}}}",
            self.label,
            self.constraints,
            self.reference_ns,
            self.workspace_ns,
            self.speedup()
        )
    }
}

fn solver_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    for n_sites in [6usize, 8, 12] {
        let (cs, candidates, bounds) = lpcmp::constraint_set(n_sites);
        let edges = center::polygon_halfplanes(&bounds);

        let mut ws = SimplexWorkspace::new();
        let (reference_ns, workspace_ns) = lpcmp::paired_min_ns(
            rounds(300),
            8,
            || {
                std::hint::black_box(lpcmp::relax_reference(std::hint::black_box(&cs)));
            },
            || {
                std::hint::black_box(
                    nomloc_lp::relax::relax_constraints_in(&mut ws, std::hint::black_box(&cs))
                        .unwrap(),
                );
            },
        );
        rows.push(Row {
            label: "relaxation".into(),
            constraints: cs.len(),
            reference_ns,
            workspace_ns,
        });

        let mut ws = SimplexWorkspace::new();
        let (reference_ns, workspace_ns) = lpcmp::paired_min_ns(
            rounds(300),
            8,
            || {
                std::hint::black_box(lpcmp::relax_then_center_reference(
                    std::hint::black_box(&cs),
                    candidates,
                    &edges,
                ));
            },
            || {
                std::hint::black_box(lpcmp::relax_then_center_workspace(
                    &mut ws,
                    std::hint::black_box(&cs),
                    candidates,
                    &bounds,
                    &edges,
                ));
            },
        );
        rows.push(Row {
            label: "relax_then_center".into(),
            constraints: cs.len(),
            reference_ns,
            workspace_ns,
        });
    }
    rows
}

/// Uncached per-query loop vs warm-cache serial batch on the Lab venue,
/// as ns per request.
fn serving_row() -> (String, f64, f64) {
    let venue = Venue::lab();
    let area = venue.plan.boundary().clone();
    let requests = serving::requests_for(&venue, 64);
    let server = LocalizationServer::new(area.clone());
    let serial = LocalizationServer::new(area.clone()).with_workers(1);
    let estimator = SpEstimator::new();

    let (uncached_ns, cached_ns) = lpcmp::paired_min_ns(
        rounds(200),
        1,
        || {
            for readings in &requests {
                let judgements = server.judge(std::hint::black_box(readings));
                std::hint::black_box(
                    estimator
                        .estimate(&judgements, &area)
                        .expect("estimate failed"),
                );
            }
        },
        || {
            std::hint::black_box(serial.localize_batch(std::hint::black_box(&requests)));
        },
    );
    let per_req = requests.len() as f64;
    (
        venue.name.to_string(),
        uncached_ns / per_req,
        cached_ns / per_req,
    )
}

fn main() {
    let lp_rows = solver_rows();
    let (venue, uncached_ns, cached_ns) = serving_row();

    let mut json = String::from("{\n  \"lp\": [\n");
    for (i, row) in lp_rows.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&row.json());
        json.push_str(if i + 1 < lp_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"serving\": {{\"venue\": \"{}\", \"uncached_ns_per_request\": {:.1}, \"cached_ns_per_request\": {:.1}, \"speedup\": {:.4}}}\n",
        venue,
        uncached_ns,
        cached_ns,
        uncached_ns / cached_ns
    ));
    json.push_str("}\n");

    for row in &lp_rows {
        println!(
            "{:<18} {:>3} rows: reference {:>9.1} ns, workspace {:>9.1} ns, speedup {:.3}x",
            row.label,
            row.constraints,
            row.reference_ns,
            row.workspace_ns,
            row.speedup()
        );
    }
    println!(
        "serving ({venue}): uncached {uncached_ns:.1} ns/req, cached {cached_ns:.1} ns/req, speedup {:.3}x",
        uncached_ns / cached_ns
    );

    let path = std::env::var("NOMLOC_BENCH_JSON").unwrap_or_else(|_| "BENCH_lp.json".to_string());
    std::fs::write(&path, &json).expect("write BENCH_lp.json");
    println!("wrote {path}");
}
