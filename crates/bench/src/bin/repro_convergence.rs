//! Measurement-budget study: accuracy vs probe packets per AP site.
//!
//! The paper "collects thousands of packages at each site"; this sweep
//! shows where the burst-median PDP saturates, i.e. how many packets a
//! deployment actually needs per localization round.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Convergence — packets per site, {name}"));
        println!(
            "{:>10}  {:>12}  {:>12}  {:>12}",
            "packets", "mean_err_m", "slv_m2", "prox_acc"
        );
        for packets in [1usize, 3, 10, 30, 60, 120] {
            let result = standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                .packets_per_site(packets)
                .run();
            println!(
                "{packets:>10}  {:>12.3}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv(),
                result.mean_proximity_accuracy()
            );
        }
    }
}
