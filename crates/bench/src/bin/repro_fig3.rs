//! Reproduces Fig. 3: channel response delay profiles for LOS and NLOS
//! transmissions.
//!
//! The paper shows two CIR amplitude-vs-delay plots: under LOS the first
//! arriving energy is the strongest; under NLOS the early (direct) energy is
//! suppressed and a later reflection dominates. We print both profiles for
//! one Lab link with and without an obstructing metal rack in the way.

use nomloc_bench::{header, print_series};
use nomloc_core::pdp::PdpEstimator;
use nomloc_geometry::{Point, Polygon};
use nomloc_rfsim::{Environment, FloorPlan, Material, RadioConfig, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn profile_series(env: &Environment, tx: Point, rx: Point, seed: u64) -> Vec<(f64, f64)> {
    let grid = SubcarrierGrid::intel5300();
    let mut rng = StdRng::seed_from_u64(seed);
    let snap = env.sample_csi(tx, rx, &grid, &mut rng);
    let profile = PdpEstimator::new().delay_profile(&snap);
    profile
        .powers()
        .iter()
        .enumerate()
        .take_while(|(i, _)| (*i as f64) * profile.tap_spacing() <= 1.5e-6)
        .map(|(i, &p)| (i as f64 * profile.tap_spacing() * 1e6, p.sqrt()))
        .collect()
}

fn main() {
    let boundary = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(12.0, 8.0));
    let tx = Point::new(2.0, 4.0);
    let rx = Point::new(10.0, 4.0);

    let los_env = Environment::new(
        FloorPlan::builder(boundary.clone()).build(),
        RadioConfig::default(),
    );
    let nlos_env = Environment::new(
        FloorPlan::builder(boundary)
            .rect_obstacle(Point::new(5.6, 3.2), Point::new(6.4, 4.8), Material::METAL)
            .build(),
        RadioConfig::default(),
    );

    header("Fig. 3 — Channel response delay profile, LOS");
    print_series(
        "delay_us",
        "amplitude",
        &profile_series(&los_env, tx, rx, 3),
    );

    header("Fig. 3 — Channel response delay profile, NLOS");
    print_series(
        "delay_us",
        "amplitude",
        &profile_series(&nlos_env, tx, rx, 3),
    );

    // Quantify the dichotomy the figure illustrates.
    let grid = SubcarrierGrid::intel5300();
    let mut rng = StdRng::seed_from_u64(3);
    let est = PdpEstimator::new();
    let p_los = est.pdp_of_snapshot(&los_env.sample_csi(tx, rx, &grid, &mut rng));
    let p_nlos = est.pdp_of_snapshot(&nlos_env.sample_csi(tx, rx, &grid, &mut rng));
    println!();
    println!(
        "peak power LOS / NLOS = {:.1} dB (paper: NLOS first path 'much lower than the normal one')",
        10.0 * (p_los / p_nlos).log10()
    );
}
