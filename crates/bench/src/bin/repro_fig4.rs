//! Reproduces Fig. 4: the virtual-AP construction for the area-boundary
//! constraint. Mirrors AP 1 across each boundary edge of the Lab and
//! verifies — point by point — that "closer to AP 1 than to every virtual
//! AP" is exactly "inside the venue".
//!
//! Writes `fig4_vaps.svg` when `NOMLOC_SVG_DIR` is set.

use nomloc_bench::header;
use nomloc_core::constraints::{boundary_constraints, virtual_aps};
use nomloc_core::scenario::Venue;
use nomloc_geometry::{Point, Polygon};
use nomloc_report::SceneBuilder;
use nomloc_rfsim::FloorPlan;

fn main() {
    header("Fig. 4 — area boundary via virtual APs");
    let venue = Venue::lab();
    let boundary = venue.plan.boundary().clone();
    let ap1 = venue.nomadic_home;

    let vaps = virtual_aps(&boundary, ap1);
    println!(
        "AP1 at {ap1}; {} boundary edges ⇒ {} virtual APs:",
        boundary.len(),
        vaps.len()
    );
    for (i, v) in vaps.iter().enumerate() {
        println!("  VAP{}: {v} (outside: {})", i + 1, !boundary.contains(*v));
    }

    // Verify the equivalence on a probe grid.
    let cs = boundary_constraints(&boundary, ap1);
    let (min, max) = boundary.bounding_box();
    let mut checked = 0;
    let mut agree = 0;
    let mut y = min.y - 2.0;
    while y <= max.y + 2.0 {
        let mut x = min.x - 2.0;
        while x <= max.x + 2.0 {
            let p = Point::new(x, y);
            if boundary.distance_to_boundary(p) > 1e-6 {
                checked += 1;
                let inside = boundary.contains(p);
                let satisfied = cs.iter().all(|c| c.halfplane.contains(p));
                if inside == satisfied {
                    agree += 1;
                }
            }
            x += 0.5;
        }
        y += 0.5;
    }
    println!("constraint/containment agreement: {agree}/{checked} probe points");

    if let Some(dir) = nomloc_report::svg_dir_from_env() {
        // Draw on an expanded canvas so the mirrored VAPs are visible.
        let canvas = Polygon::rectangle(
            Point::new(min.x - (max.x - min.x), min.y - (max.y - min.y)),
            Point::new(max.x + (max.x - min.x), max.y + (max.y - min.y)),
        );
        let plan = FloorPlan::builder(canvas).build();
        let mut scene = SceneBuilder::new(&plan)
            .region(boundary.clone())
            .ap(ap1, "AP1");
        for (i, &v) in vaps.iter().enumerate() {
            scene = scene.estimate(v, format!("VAP{}", i + 1));
        }
        match nomloc_report::write_svg(&dir, "fig4_vaps", &scene.render()) {
            Ok(()) => println!("wrote {}/fig4_vaps.svg", dir.display()),
            Err(e) => eprintln!("svg write failed: {e}"),
        }
    }
}
