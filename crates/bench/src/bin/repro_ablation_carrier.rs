//! Realism ablation: the nomadic AP's human carrier. The paper's greeters
//! and guards *hold* the nomadic AP; their bodies shadow some of its
//! links. Compares campaigns with and without an 8 dB human-body obstacle
//! standing behind each nomadic measurement site.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Ablation — nomadic carrier body, {name}"));
        println!(
            "{:>12}  {:>12}  {:>12}  {:>12}",
            "carrier", "mean_err_m", "slv_m2", "prox_acc"
        );
        for (label, blocking) in [("absent", false), ("present", true)] {
            let result = standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                .carrier_blocking(blocking)
                .run();
            println!(
                "{label:>12}  {:>12.3}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv(),
                result.mean_proximity_accuracy()
            );
        }
        // Even with the carrier in the way, nomadic must beat static.
        let static_result = standard_campaign(venue_fn(), Deployment::Static).run();
        println!(
            "(static reference: {:.3} m mean error)",
            static_result.mean_error()
        );
    }
}
