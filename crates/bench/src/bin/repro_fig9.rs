//! Reproduces Fig. 9: CDF of mean localization error for static vs nomadic
//! deployments, in the Lab (9a) and Lobby (9b).
//!
//! Paper observations to match: in the Lab both deployments achieve mean
//! accuracy below ~2 m with NomLoc clearly ahead; in the Lobby NomLoc holds
//! ~2.5 m mean / ~3.6 m at the 90th percentile while the static deployment
//! degrades significantly.

use nomloc_bench::{header, print_cdf, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    for (fig, venue_fn) in [
        ("9(a)", Venue::lab as fn() -> Venue),
        ("9(b)", Venue::lobby),
    ] {
        let name = venue_fn().name;
        header(&format!("Fig. {fig} — Error CDF, {name}"));
        let static_result = standard_campaign(venue_fn(), Deployment::Static).run();
        let nomadic_result =
            standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS)).run();
        print_cdf(&format!("{name} static"), &static_result.error_cdf());
        print_cdf(&format!("{name} nomadic"), &nomadic_result.error_cdf());
        println!(
            "mean error: static {:.2} m → nomadic {:.2} m ({:+.0} %)",
            static_result.mean_error(),
            nomadic_result.mean_error(),
            100.0 * (nomadic_result.mean_error() / static_result.mean_error() - 1.0)
        );
        // Optional SVG chart next to the text output.
        if let Some(dir) = nomloc_report::svg_dir_from_env() {
            let static_cdf = static_result.error_cdf();
            let nomadic_cdf = nomadic_result.error_cdf();
            if let Some(svg) = nomloc_report::cdf_chart(
                &format!("Fig. {fig} — Error CDF, {name}"),
                &[("static", &static_cdf), ("nomadic", &nomadic_cdf)],
            ) {
                let file = format!("fig9_{}", name.to_lowercase());
                match nomloc_report::write_svg(&dir, &file, &svg) {
                    Ok(()) => println!("wrote {}/{file}.svg", dir.display()),
                    Err(e) => eprintln!("svg write failed: {e}"),
                }
            }
        }
    }
}
