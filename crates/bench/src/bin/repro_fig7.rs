//! Reproduces Fig. 7: accuracy of PDP-based proximity determination per
//! test position, in both the Lab and Lobby scenarios.
//!
//! Paper observations to match: most positions exceed 85 % accuracy;
//! positions near the midpoint of AP pairs dip (similar PDPs → coin
//! flips); the sparser Lobby deployment does at least as well as the Lab.

use nomloc_bench::{header, print_row, standard_campaign};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn run(venue: Venue) {
    header(&format!(
        "Fig. 7 — PDP proximity accuracy per position, {}",
        venue.name
    ));
    let result = standard_campaign(venue, Deployment::nomadic(nomloc_bench::NOMADIC_STEPS)).run();
    println!("{:>10}  {:>10}", "position", "accuracy");
    for (i, acc) in result.proximity_accuracy.iter().enumerate() {
        println!("{:>10}  {acc:>10.3}", i + 1);
    }
    print_row("mean accuracy", result.mean_proximity_accuracy());
    let above_85 = result
        .proximity_accuracy
        .iter()
        .filter(|&&a| a > 0.85)
        .count();
    print_row(
        "positions above 85 % (paper: 'most')",
        above_85 as f64 / result.proximity_accuracy.len() as f64,
    );
}

fn main() {
    run(Venue::lab());
    run(Venue::lobby());
}
