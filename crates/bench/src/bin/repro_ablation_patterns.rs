//! Extension ablation (paper §VI future work): the impact of the nomadic
//! AP's **moving pattern** on overall performance. Compares the paper's
//! uniform random walk against stay-biased, patrol-sweep, and corridor
//! pacing transition families at equal step budgets.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::{Deployment, MobilityPattern};
use nomloc_core::scenario::Venue;

fn main() {
    let patterns = [
        ("uniform", MobilityPattern::Uniform),
        ("stay-biased", MobilityPattern::StayBiased),
        ("sweep", MobilityPattern::Sweep),
        ("corridor", MobilityPattern::Corridor),
    ];
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Ablation — nomadic moving pattern, {name}"));
        println!(
            "{:>12}  {:>12}  {:>12}  {:>12}",
            "pattern", "mean_err_m", "slv_m2", "prox_acc"
        );
        for (label, pattern) in patterns {
            let result = standard_campaign(
                venue_fn(),
                Deployment::Nomadic {
                    steps: NOMADIC_STEPS,
                    pattern,
                },
            )
            .run();
            println!(
                "{label:>12}  {:>12.3}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv(),
                result.mean_proximity_accuracy()
            );
        }
    }
}
