//! Design ablation: nomadic downscoping granularity (§IV-B-3). "The
//! further the nomadic AP moves, the more CSI measurements will be
//! collected … resulting in finer granularity segmentation." Sweeps the
//! walk length (which controls how many distinct sites get measured) and
//! reports accuracy plus the mean feasible-region area.

use nomloc_bench::{header, standard_campaign};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Ablation — nomadic walk length, {name}"));
        println!("{:>8}  {:>12}  {:>12}", "steps", "mean_err_m", "slv_m2");
        for steps in [0usize, 1, 2, 4, 8, 16] {
            let result = standard_campaign(venue_fn(), Deployment::nomadic(steps)).run();
            println!(
                "{steps:>8}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv()
            );
        }
    }
}
