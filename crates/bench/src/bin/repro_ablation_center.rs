//! Design ablation: the "center of the feasible region". The paper uses
//! CVX's interior-point log-barrier center (≈ analytic center); this
//! implementation defaults to the Chebyshev center and also offers the
//! exact polygon centroid. The sweep shows how much the choice matters.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;
use nomloc_lp::center::CenterMethod;

fn main() {
    let methods = [
        ("chebyshev", CenterMethod::Chebyshev),
        ("analytic", CenterMethod::Analytic),
        ("centroid", CenterMethod::Centroid),
    ];
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Ablation — center method, {name}"));
        println!(
            "{:>12}  {:>12}  {:>12}  {:>12}",
            "method", "mean_err_m", "slv_m2", "err_90th_m"
        );
        for (label, method) in methods {
            let result = standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                .center_method(method)
                .run();
            println!(
                "{label:>12}  {:>12.3}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv(),
                result.error_cdf().quantile(0.9)
            );
        }
    }
}
