//! Hardware ablation: receive-antenna diversity. The paper's Intel 5300
//! exports CSI for up to three λ/2-spaced receive chains; selection
//! combining across them stabilizes the PDP against per-element fading.
//! Sweeps 1–3 antennas in both venues.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Ablation — receive antennas, {name}"));
        println!(
            "{:>10}  {:>12}  {:>12}  {:>12}",
            "antennas", "mean_err_m", "slv_m2", "prox_acc"
        );
        for antennas in 1..=3usize {
            let result = standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                .rx_antennas(antennas)
                .run();
            println!(
                "{antennas:>10}  {:>12.3}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv(),
                result.mean_proximity_accuracy()
            );
        }
    }
}
