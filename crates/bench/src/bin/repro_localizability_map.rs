//! Analytical counterpart of Fig. 1: the spatial-localizability map of a
//! deployment, before any radio is simulated.
//!
//! Prints ASCII heat maps of the *predicted* localization error (the
//! distance from each grid point to the center of its space-partition
//! cell) for the static deployment and for the deployment augmented with
//! the nomadic AP's sites, in both venues — making the "blind areas"
//! visible and showing how the nomadic sites dissolve them.

use nomloc_bench::{header, print_row};
use nomloc_core::localizability::{analyze, plan_route};
use nomloc_core::scenario::Venue;
use nomloc_geometry::Point;

const PITCH: f64 = 0.5;

/// Renders the map as rows of glyphs: '.' < 1 m, 'o' < 2 m, 'O' < 3 m,
/// '#' ≥ 3 m, space = outside the venue.
fn render(venue: &Venue, sites: &[Point]) {
    let map = analyze(venue.plan.boundary(), sites, PITCH);
    let (min, max) = venue.plan.boundary().bounding_box();
    let cols = ((max.x - min.x) / PITCH).round() as usize;
    let rows = ((max.y - min.y) / PITCH).round() as usize;
    let mut grid = vec![vec![' '; cols]; rows];
    for c in map.cells() {
        let i = ((c.point.x - min.x) / PITCH) as usize;
        let j = ((c.point.y - min.y) / PITCH) as usize;
        if j < rows && i < cols {
            grid[j][i] = match c.predicted_error {
                e if e < 1.0 => '.',
                e if e < 2.0 => 'o',
                e if e < 3.0 => 'O',
                _ => '#',
            };
        }
    }
    // Mark AP sites.
    for ap in sites {
        let i = ((ap.x - min.x) / PITCH) as usize;
        let j = ((ap.y - min.y) / PITCH) as usize;
        if j < rows && i < cols {
            grid[j][i] = 'A';
        }
    }
    for row in grid.iter().rev() {
        println!("  {}", row.iter().collect::<String>());
    }
    print_row("mean predicted error (m)", map.mean_predicted_error());
    print_row("predicted SLV (m²)", map.predicted_slv());
    print_row(
        "blind points (err > 3 m)",
        map.blind_spots(3.0).len() as f64,
    );
}

fn main() {
    println!("legend: '.' <1 m   'o' <2 m   'O' <3 m   '#' ≥3 m   'A' AP site");
    for venue in [Venue::lab(), Venue::lobby()] {
        header(&format!("{} — static deployment", venue.name));
        let static_sites = venue.static_deployment();
        render(&venue, &static_sites);

        header(&format!("{} — with nomadic sites", venue.name));
        let mut nomadic_sites = static_sites.clone();
        nomadic_sites.extend_from_slice(&venue.nomadic_sites);
        render(&venue, &nomadic_sites);

        // Planning: greedy 3-site route for the nomadic AP.
        let candidates: Vec<Point> = venue
            .test_sites
            .iter()
            .chain(venue.nomadic_sites.iter())
            .copied()
            .collect();
        let route = plan_route(venue.plan.boundary(), &static_sites, &candidates, 3, 1.0);
        println!();
        println!(
            "greedy nomadic route for {} (site → predicted SLV after visit):",
            venue.name
        );
        for (i, (site, slv)) in route.iter().enumerate() {
            println!("  {}. {site} → {slv:.3}", i + 1);
        }
    }
}
