//! Reproduces Fig. 10: effect of the nomadic AP's position error (ER) on
//! localization accuracy, in the Lab (10a) and Lobby (10b).
//!
//! Paper observations to match: larger ER degrades accuracy, but the
//! degradation is negligible for small ER and graceful up to 3 m — the
//! SP method "does not highly depend on the accurate location of these
//! APs".

use nomloc_bench::{header, print_cdf, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    for (fig, venue_fn) in [
        ("10(a)", Venue::lab as fn() -> Venue),
        ("10(b)", Venue::lobby),
    ] {
        let name = venue_fn().name;
        header(&format!("Fig. {fig} — Effect of ER, {name}"));
        let mut means = Vec::new();
        for er in [0.0, 1.0, 2.0, 3.0] {
            let result = standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                .position_error(er)
                .run();
            print_cdf(&format!("{name} ER={er} m"), &result.error_cdf());
            means.push((er, result.mean_error()));
        }
        println!();
        println!("mean error by ER:");
        for (er, m) in &means {
            println!("  ER = {er} m → {m:.2} m");
        }
        let degradation = means.last().unwrap().1 - means[0].1;
        println!("degradation from ER 0 → 3 m: {degradation:+.2} m (paper: robust / graceful)");
    }
}
