//! Design ablation: spectral windowing ahead of the CSI→CIR IFFT.
//!
//! The max-tap PDP rides on the Dirichlet kernel of the implicit
//! rectangular window; tapering (Hann/Hamming/Blackman) trades delay
//! resolution for sidelobe suppression. This sweep measures what the
//! trade is worth end to end.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;
use nomloc_dsp::Window;

fn main() {
    let windows = [
        ("rectangular", Window::Rectangular),
        ("hann", Window::Hann),
        ("hamming", Window::Hamming),
        ("blackman", Window::Blackman),
    ];
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Ablation — PDP spectral window, {name}"));
        println!(
            "{:>12}  {:>12}  {:>12}  {:>12}",
            "window", "mean_err_m", "slv_m2", "prox_acc"
        );
        for (label, window) in windows {
            let result = standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                .pdp_window(window)
                .run();
            println!(
                "{label:>12}  {:>12.3}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv(),
                result.mean_proximity_accuracy()
            );
        }
    }
}
