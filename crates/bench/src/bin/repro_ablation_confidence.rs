//! Design ablation: the confidence factor `f` (Eq. 1–4). Compares the
//! paper's exponential family against logistic variants and a hard 0/1
//! decision, validating that *graded* confidence is what lets the
//! relaxation LP sacrifice the right constraints.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::confidence::{HardDecision, Logistic, PaperExp};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let name = venue_fn().name;
        header(&format!("Ablation — confidence function f, {name}"));
        println!(
            "{:>14}  {:>12}  {:>12}  {:>12}",
            "f", "mean_err_m", "slv_m2", "err_90th_m"
        );
        let campaign = |c| {
            standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS)).run_with_confidence(c)
        };
        let rows: Vec<(&str, nomloc_core::experiment::CampaignResult)> = vec![
            ("paper-exp", campaign(PaperExp)),
            (
                "logistic-k05",
                standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                    .run_with_confidence(Logistic::new(0.5)),
            ),
            (
                "logistic-k1",
                standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                    .run_with_confidence(Logistic::new(1.0)),
            ),
            (
                "logistic-k4",
                standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                    .run_with_confidence(Logistic::new(4.0)),
            ),
            (
                "hard-0/1",
                standard_campaign(venue_fn(), Deployment::nomadic(NOMADIC_STEPS))
                    .run_with_confidence(HardDecision),
            ),
        ];
        for (label, result) in rows {
            println!(
                "{label:>14}  {:>12.3}  {:>12.3}  {:>12.3}",
                result.mean_error(),
                result.slv(),
                result.error_cdf().quantile(0.9)
            );
        }
    }
}
