//! Scaling study: the same Lab layout at different physical sizes.
//!
//! SP localization accuracy is bounded by the partition-cell size, which
//! grows linearly with the venue; meanwhile larger venues also weaken SNR.
//! This sweep quantifies how the calibration-free accuracy tracks venue
//! scale — the deployment question ("how many nomadic sites does a bigger
//! store need?") behind the paper's marketplace motivation.

use nomloc_bench::{header, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    header("Ablation — venue scale (Lab layout × factor)");
    println!(
        "{:>8}  {:>10}  {:>12}  {:>12}  {:>12}",
        "scale", "area_m2", "static_err", "nomadic_err", "nomadic_slv"
    );
    for factor in [0.75, 1.0, 1.5, 2.0] {
        let venue = Venue::lab().scaled(factor);
        let area = venue.plan.boundary().area();
        let st = standard_campaign(venue.clone(), Deployment::Static).run();
        let no = standard_campaign(venue, Deployment::nomadic(NOMADIC_STEPS)).run();
        println!(
            "{factor:>8.2}  {area:>10.1}  {:>12.3}  {:>12.3}  {:>12.3}",
            st.mean_error(),
            no.mean_error(),
            no.slv()
        );
    }
}
