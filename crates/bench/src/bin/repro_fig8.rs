//! Reproduces Fig. 8: spatial localizability variance (SLV) of the static
//! AP deployment vs NomLoc (nomadic), in the Lab and Lobby scenarios.
//!
//! Paper observations to match: NomLoc's SLV is smaller in both venues, and
//! the gap is larger in the Lobby where the static deployment's SLV is
//! largest.

use nomloc_bench::{header, print_row, standard_campaign, NOMADIC_STEPS};
use nomloc_core::experiment::Deployment;
use nomloc_core::scenario::Venue;

fn main() {
    header("Fig. 8 — Spatial localizability variance (m²)");
    let mut rows = Vec::new();
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let venue = venue_fn();
        let name = venue.name;
        let static_slv = standard_campaign(venue_fn(), Deployment::Static)
            .run()
            .slv();
        let nomadic_slv = standard_campaign(venue, Deployment::nomadic(NOMADIC_STEPS))
            .run()
            .slv();
        print_row(&format!("{name} / static"), static_slv);
        print_row(&format!("{name} / nomadic"), nomadic_slv);
        rows.push((name, static_slv, nomadic_slv));
    }
    println!();
    for (name, s, n) in &rows {
        println!(
            "{name}: nomadic reduces SLV by {:.0} % (static {s:.2} → nomadic {n:.2})",
            100.0 * (1.0 - n / s)
        );
    }
}
