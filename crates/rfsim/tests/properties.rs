//! Property-based tests for the RF simulator.

use nomloc_geometry::{Point, Polygon, Segment};
use nomloc_rfsim::{Environment, FloorPlan, Material, PathKind, RadioConfig, SubcarrierGrid};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const W: f64 = 24.0;
const H: f64 = 14.0;

fn open_env() -> Environment {
    let plan =
        FloorPlan::builder(Polygon::rectangle(Point::new(0.0, 0.0), Point::new(W, H))).build();
    Environment::new(plan, RadioConfig::default())
}

fn interior_point() -> impl Strategy<Value = Point> {
    (0.5..W - 0.5, 0.5..H - 0.5).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    // Path lengths are at least the straight-line distance; delays follow.
    #[test]
    fn path_lengths_bounded_below_by_distance(tx in interior_point(), rx in interior_point()) {
        prop_assume!(tx.distance(rx) > 0.5);
        let trace = open_env().trace(tx, rx);
        let d = tx.distance(rx);
        for p in trace.paths() {
            prop_assert!(p.length >= d - 1e-9, "path shorter than LOS: {} < {}", p.length, d);
            prop_assert!((p.delay - p.length / 299_792_458.0).abs() < 1e-18);
            prop_assert!(p.amplitude.is_finite() && p.amplitude >= 0.0);
        }
        // Direct path exists in an open room and equals the distance.
        let direct = trace.direct().unwrap();
        prop_assert!((direct.length - d).abs() < 1e-9);
        prop_assert!(trace.is_los());
    }

    // Paths arrive sorted by amplitude, and in an open room the direct
    // path is the strongest.
    #[test]
    fn direct_path_strongest_in_open_room(tx in interior_point(), rx in interior_point()) {
        prop_assume!(tx.distance(rx) > 1.0);
        let trace = open_env().trace(tx, rx);
        let paths = trace.paths();
        for w in paths.windows(2) {
            prop_assert!(w[0].amplitude >= w[1].amplitude);
        }
        prop_assert_eq!(paths[0].kind, PathKind::Direct);
    }

    // Reciprocity: swapping TX and RX preserves every path length (the
    // image method is symmetric).
    #[test]
    fn link_reciprocity(tx in interior_point(), rx in interior_point()) {
        prop_assume!(tx.distance(rx) > 1.0);
        let env = open_env();
        let fwd = env.trace(tx, rx);
        let rev = env.trace(rx, tx);
        prop_assert_eq!(fwd.paths().len(), rev.paths().len());
        let mut fl: Vec<f64> = fwd.paths().iter().map(|p| p.length).collect();
        let mut rl: Vec<f64> = rev.paths().iter().map(|p| p.length).collect();
        fl.sort_by(f64::total_cmp);
        rl.sort_by(f64::total_cmp);
        for (a, b) in fl.iter().zip(&rl) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        prop_assert!((fwd.rss_dbm() - rev.rss_dbm()).abs() < 1e-6);
    }

    // RSS is finite and within a physically sane window for in-room links.
    #[test]
    fn rss_within_sane_window(tx in interior_point(), rx in interior_point()) {
        prop_assume!(tx.distance(rx) > 0.5);
        let rss = open_env().trace(tx, rx).rss_dbm();
        prop_assert!((-95.0..10.0).contains(&rss), "rss {rss} dBm");
    }

    // Obstruction loss is symmetric and non-negative, and zero implies LOS.
    #[test]
    fn obstruction_symmetric(tx in interior_point(), rx in interior_point()) {
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(W, H),
        ))
        .wall(
            Segment::new(Point::new(12.0, 0.0), Point::new(12.0, 9.0)),
            Material::CONCRETE,
        )
        .rect_obstacle(Point::new(4.0, 4.0), Point::new(6.0, 6.0), Material::WOOD)
        .build();
        let ab = plan.obstruction_db(tx, rx);
        let ba = plan.obstruction_db(rx, tx);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
        prop_assert_eq!(ab == 0.0, plan.is_los(tx, rx));
    }

    // CSI snapshots are always finite, with the right dimensionality.
    #[test]
    fn csi_snapshots_finite(tx in interior_point(), rx in interior_point(), seed in 0u64..1000) {
        prop_assume!(tx.distance(rx) > 0.5);
        let env = open_env();
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(seed);
        let snap = env.sample_csi(tx, rx, &grid, &mut rng);
        prop_assert_eq!(snap.h.len(), 30);
        for h in &snap.h {
            prop_assert!(h.is_finite());
        }
        prop_assert!(snap.total_power() >= 0.0);
    }

    // Adding an obstacle on the direct path never increases total received
    // power for that link.
    #[test]
    fn clutter_never_amplifies(y in 2.0..H - 2.0) {
        let tx = Point::new(2.0, y);
        let rx = Point::new(W - 2.0, y);
        let open = open_env().trace(tx, rx).rss_dbm();
        let blocked_plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(W, H),
        ))
        .wall(
            Segment::new(Point::new(W / 2.0, 0.0), Point::new(W / 2.0, H)),
            Material::CONCRETE,
        )
        .build();
        let blocked = Environment::new(blocked_plan, RadioConfig::default())
            .trace(tx, rx)
            .rss_dbm();
        prop_assert!(blocked <= open + 3.0, "wall amplified link: {blocked} > {open}");
    }
}
