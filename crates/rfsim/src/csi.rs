//! Channel state information: subcarrier grids and snapshots.

use nomloc_dsp::Complex;

/// The set of subcarrier frequency offsets a NIC reports CSI on.
///
/// Offsets are relative to the carrier, in Hz, ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct SubcarrierGrid {
    offsets_hz: Vec<f64>,
}

/// 802.11n 20 MHz subcarrier spacing, Hz.
pub const SUBCARRIER_SPACING_HZ: f64 = 312_500.0;

impl SubcarrierGrid {
    /// Grid from explicit offsets (must be ascending and finite).
    ///
    /// # Panics
    ///
    /// Panics when `offsets_hz` is empty, non-finite, or not strictly
    /// ascending.
    pub fn new(offsets_hz: Vec<f64>) -> Self {
        assert!(!offsets_hz.is_empty(), "grid must have subcarriers");
        assert!(
            offsets_hz.iter().all(|f| f.is_finite()),
            "offsets must be finite"
        );
        assert!(
            offsets_hz.windows(2).all(|w| w[0] < w[1]),
            "offsets must be strictly ascending"
        );
        SubcarrierGrid { offsets_hz }
    }

    /// The 30 grouped subcarriers the Intel 5300 CSI tool exports for a
    /// 20 MHz channel (every other data subcarrier, plus the band edges).
    pub fn intel5300() -> Self {
        let indices: [i32; 30] = [
            -28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1, 1, 3, 5, 7, 9,
            11, 13, 15, 17, 19, 21, 23, 25, 27, 28,
        ];
        SubcarrierGrid::new(
            indices
                .iter()
                .map(|&i| i as f64 * SUBCARRIER_SPACING_HZ)
                .collect(),
        )
    }

    /// All 56 occupied subcarriers of a 20 MHz 802.11n channel
    /// (±1…±28, DC excluded).
    pub fn full_80211n_20mhz() -> Self {
        let mut idx: Vec<i32> = (-28..=28).filter(|&i| i != 0).collect();
        idx.sort_unstable();
        SubcarrierGrid::new(
            idx.iter()
                .map(|&i| i as f64 * SUBCARRIER_SPACING_HZ)
                .collect(),
        )
    }

    /// All 114 occupied subcarriers of a 40 MHz 802.11n channel
    /// (±2…±58, DC region excluded) — doubles the delay resolution of the
    /// CSI→CIR transform.
    pub fn full_80211n_40mhz() -> Self {
        let mut idx: Vec<i32> = (-58..=58).filter(|&i: &i32| i.abs() >= 2).collect();
        idx.sort_unstable();
        SubcarrierGrid::new(
            idx.iter()
                .map(|&i| i as f64 * SUBCARRIER_SPACING_HZ)
                .collect(),
        )
    }

    /// A coarse 8-subcarrier pilot-only grid over 20 MHz — what an
    /// OFDM receiver could glean from pilots alone, for the granularity
    /// ablation.
    pub fn pilots_8() -> Self {
        let idx: [i32; 8] = [-28, -20, -12, -4, 4, 12, 20, 28];
        SubcarrierGrid::new(
            idx.iter()
                .map(|&i| i as f64 * SUBCARRIER_SPACING_HZ)
                .collect(),
        )
    }

    /// Subcarrier offsets from the carrier, Hz.
    pub fn offsets_hz(&self) -> &[f64] {
        &self.offsets_hz
    }

    /// Number of subcarriers.
    pub fn len(&self) -> usize {
        self.offsets_hz.len()
    }

    /// Always `false` post-construction.
    pub fn is_empty(&self) -> bool {
        self.offsets_hz.is_empty()
    }

    /// Occupied span from first to last subcarrier, Hz.
    pub fn span_hz(&self) -> f64 {
        self.offsets_hz[self.offsets_hz.len() - 1] - self.offsets_hz[0]
    }

    /// Mean spacing between adjacent subcarriers, Hz.
    ///
    /// The PDP estimator treats the grid as uniform at this spacing — the
    /// same approximation CSI-based systems apply to the Intel 5300's
    /// grouped subcarriers.
    pub fn mean_spacing_hz(&self) -> f64 {
        if self.offsets_hz.len() < 2 {
            return SUBCARRIER_SPACING_HZ;
        }
        self.span_hz() / (self.offsets_hz.len() - 1) as f64
    }
}

/// One CSI measurement: a complex channel coefficient per subcarrier.
#[derive(Debug, Clone, PartialEq)]
pub struct CsiSnapshot {
    /// Channel coefficients, one per grid subcarrier.
    pub h: Vec<Complex>,
    /// The grid the coefficients were measured on.
    pub grid: SubcarrierGrid,
}

impl CsiSnapshot {
    /// Total measured power across subcarriers (Σ|h|²), linear.
    pub fn total_power(&self) -> f64 {
        self.h.iter().map(|z| z.norm_sq()).sum()
    }

    /// Mean per-subcarrier power, linear. The RSS a coarse receiver would
    /// report for this packet.
    pub fn mean_power(&self) -> f64 {
        self.total_power() / self.h.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel5300_has_30_subcarriers() {
        let g = SubcarrierGrid::intel5300();
        assert_eq!(g.len(), 30);
        assert!((g.span_hz() - 56.0 * SUBCARRIER_SPACING_HZ).abs() < 1.0);
        // The real Intel grouping is slightly asymmetric about DC
        // (indices sum to +13).
        let sum: f64 = g.offsets_hz().iter().sum();
        assert!((sum - 13.0 * SUBCARRIER_SPACING_HZ).abs() < 1.0);
    }

    #[test]
    fn full_grid_has_56_subcarriers() {
        let g = SubcarrierGrid::full_80211n_20mhz();
        assert_eq!(g.len(), 56);
        assert!(!g.offsets_hz().contains(&0.0));
        assert!((g.mean_spacing_hz() - 56.0 * SUBCARRIER_SPACING_HZ / 55.0).abs() < 1.0);
    }

    #[test]
    fn offsets_strictly_ascending() {
        for g in [
            SubcarrierGrid::intel5300(),
            SubcarrierGrid::full_80211n_20mhz(),
            SubcarrierGrid::full_80211n_40mhz(),
            SubcarrierGrid::pilots_8(),
        ] {
            assert!(g.offsets_hz().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn forty_mhz_grid_has_114_subcarriers() {
        let g = SubcarrierGrid::full_80211n_40mhz();
        assert_eq!(g.len(), 114);
        assert!((g.span_hz() - 116.0 * SUBCARRIER_SPACING_HZ).abs() < 1.0);
    }

    #[test]
    fn pilot_grid_is_sparse_but_spans_band() {
        let g = SubcarrierGrid::pilots_8();
        assert_eq!(g.len(), 8);
        assert!((g.span_hz() - 56.0 * SUBCARRIER_SPACING_HZ).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_offsets() {
        let _ = SubcarrierGrid::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must have subcarriers")]
    fn rejects_empty_grid() {
        let _ = SubcarrierGrid::new(vec![]);
    }

    #[test]
    fn snapshot_power() {
        let grid = SubcarrierGrid::new(vec![0.0, 1.0]);
        let snap = CsiSnapshot {
            h: vec![Complex::new(3.0, 4.0), Complex::new(0.0, 2.0)],
            grid,
        };
        assert!((snap.total_power() - 29.0).abs() < 1e-12);
        assert!((snap.mean_power() - 14.5).abs() < 1e-12);
    }

    #[test]
    fn single_subcarrier_spacing_fallback() {
        let g = SubcarrierGrid::new(vec![0.0]);
        assert_eq!(g.mean_spacing_hz(), SUBCARRIER_SPACING_HZ);
    }
}
