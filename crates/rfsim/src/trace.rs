//! Image-method multipath ray tracing.

use crate::csi::{CsiSnapshot, SubcarrierGrid};
use crate::material::Material;
use crate::pathloss::{RadioConfig, SPEED_OF_LIGHT};
use crate::plan::FloorPlan;
use nomloc_dsp::Complex;
use nomloc_geometry::{Line, Point, Segment};
use rand::Rng;
use std::f64::consts::TAU;

/// Hard cap on traced paths per link, strongest first.
const MAX_PATHS: usize = 64;

/// How a propagation path reached the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// The straight TX→RX path (possibly obstructed).
    Direct,
    /// One specular bounce off a wall/boundary/obstacle face.
    Reflection1,
    /// Two specular bounces.
    Reflection2,
    /// Diffuse scattering off an obstacle corner.
    Scatter,
}

/// One propagation path of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationPath {
    /// Path classification.
    pub kind: PathKind,
    /// Geometric length, metres.
    pub length: f64,
    /// Propagation delay, seconds.
    pub delay: f64,
    /// Field amplitude at the receiver (√mW).
    pub amplitude: f64,
    /// Carrier phase at the receiver, radians.
    pub phase: f64,
    /// Penetration loss accumulated along the path, dB (0 ⇒ unobstructed).
    pub obstruction_db: f64,
}

impl PropagationPath {
    /// Received power of this path, mW.
    pub fn power_mw(&self) -> f64 {
        self.amplitude * self.amplitude
    }
}

/// All traced paths of one TX→RX link, strongest first.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTrace {
    paths: Vec<PropagationPath>,
}

impl LinkTrace {
    /// The traced paths, sorted by descending amplitude.
    pub fn paths(&self) -> &[PropagationPath] {
        &self.paths
    }

    /// The direct path (present even when heavily obstructed, unless it
    /// fell below the dynamic-range cut).
    pub fn direct(&self) -> Option<&PropagationPath> {
        self.paths.iter().find(|p| p.kind == PathKind::Direct)
    }

    /// `true` when the direct path exists and is unobstructed.
    pub fn is_los(&self) -> bool {
        self.direct().is_some_and(|p| p.obstruction_db == 0.0)
    }

    /// Total received power, dBm (coherent path powers, no noise).
    pub fn rss_dbm(&self) -> f64 {
        let total: f64 = self.paths.iter().map(|p| p.power_mw()).sum();
        if total <= 0.0 {
            -200.0
        } else {
            10.0 * total.log10()
        }
    }

    /// Noiseless CSI over `grid`: `H(f) = Σ_p a_p·e^{jφ_p}·e^{−j2πfτ_p}`.
    pub fn csi(&self, grid: &SubcarrierGrid) -> Vec<Complex> {
        grid.offsets_hz()
            .iter()
            .map(|&f| {
                self.paths
                    .iter()
                    .map(|p| Complex::from_polar(p.amplitude, p.phase - TAU * f * p.delay))
                    .sum()
            })
            .collect()
    }

    /// One noisy CSI snapshot: per-packet impairments on top of the traced
    /// paths — common phase, sampling-time offset, per-subcarrier AWGN,
    /// and per-bounce phase jitter (centimetre-scale channel dynamics; the
    /// direct path stays phase-stable, reflections decorrelate between
    /// packets).
    pub fn sample_csi<R: Rng + ?Sized>(
        &self,
        config: &RadioConfig,
        grid: &SubcarrierGrid,
        rng: &mut R,
    ) -> CsiSnapshot {
        // Draw one phase offset per path for this packet.
        let jitters: Vec<f64> = self
            .paths
            .iter()
            .map(|p| {
                let bounces = match p.kind {
                    PathKind::Direct => 0.0,
                    PathKind::Reflection1 | PathKind::Scatter => 1.0,
                    PathKind::Reflection2 => 2.0,
                };
                config.bounce_phase_jitter_rad * bounces * crate::gaussian(rng)
            })
            .collect();
        let common = Complex::cis(rng.gen_range(0.0..TAU));
        let sto = rng.gen_range(0.0..=config.sto_max_s.max(f64::MIN_POSITIVE));
        // Per-subcarrier channel-estimation noise: the configured noise
        // floor is interpreted as the effective per-subcarrier estimation
        // noise power.
        let sigma = (10f64.powf(config.noise_floor_dbm / 10.0) / 2.0).sqrt();
        let h = grid
            .offsets_hz()
            .iter()
            .map(|&f| {
                let sum: Complex = self
                    .paths
                    .iter()
                    .zip(&jitters)
                    .map(|(p, &jit)| {
                        Complex::from_polar(p.amplitude, p.phase + jit - TAU * f * p.delay)
                    })
                    .sum();
                let ramp = Complex::cis(-TAU * f * sto);
                let noise =
                    Complex::new(sigma * crate::gaussian(rng), sigma * crate::gaussian(rng));
                sum * common * ramp + noise
            })
            .collect();
        CsiSnapshot {
            h,
            grid: grid.clone(),
        }
    }
}

/// Venue-static ray-tracing geometry, precomputed once per floor plan.
///
/// `trace_link` needs the plan's reflective surfaces, their supporting
/// lines (the "image tables" the mirror method folds TX across for first-
/// and second-order bounces), and the scatter corners. None of these
/// depend on the link endpoints, so a serving loop tracing many links
/// against one plan should build a `TraceGeometry` once and call
/// [`trace_link_cached`] — [`crate::Environment`] does this internally.
///
/// The cached values are the same floats the per-link path recomputes, so
/// cached and uncached traces are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGeometry {
    surfaces: Vec<(Segment, Material)>,
    lines: Vec<Option<Line>>,
    scatterers: Vec<Point>,
}

impl TraceGeometry {
    /// Precomputes the reflective surfaces, supporting lines, and scatter
    /// corners of `plan`.
    pub fn new(plan: &FloorPlan) -> Self {
        let surfaces = plan.reflective_surfaces();
        let lines = surfaces.iter().map(|(seg, _)| seg.line()).collect();
        TraceGeometry {
            surfaces,
            lines,
            scatterers: plan.scatterers(),
        }
    }

    /// The reflective surfaces (boundary edges, walls, obstacle faces).
    pub fn surfaces(&self) -> &[(Segment, Material)] {
        &self.surfaces
    }

    /// The scatter corners.
    pub fn scatterers(&self) -> &[Point] {
        &self.scatterers
    }
}

/// Traces every modelled path of the `tx → rx` link, recomputing the
/// venue geometry on the fly. Prefer [`trace_link_cached`] in loops.
pub fn trace_link(plan: &FloorPlan, config: &RadioConfig, tx: Point, rx: Point) -> LinkTrace {
    trace_link_cached(plan, config, &TraceGeometry::new(plan), tx, rx)
}

/// Traces every modelled path of the `tx → rx` link using precomputed
/// venue geometry. `geom` must have been built from `plan` (the plan is
/// still needed for obstruction tests).
pub fn trace_link_cached(
    plan: &FloorPlan,
    config: &RadioConfig,
    geom: &TraceGeometry,
    tx: Point,
    rx: Point,
) -> LinkTrace {
    let mut paths = Vec::new();
    let lambda = config.wavelength();

    let mut push = |kind: PathKind, length: f64, extra_loss_db: f64, obstruction_db: f64| {
        if length <= 0.0 || !length.is_finite() {
            return;
        }
        let loss = config.path_loss_db(length) + extra_loss_db + obstruction_db;
        let amplitude = config.amplitude(loss);
        // Reflections flip the field sign (π shift) once per bounce; the
        // kind encodes bounce parity.
        let bounce_phase = match kind {
            PathKind::Direct => 0.0,
            PathKind::Reflection1 | PathKind::Scatter => std::f64::consts::PI,
            PathKind::Reflection2 => 0.0,
        };
        let phase = (-TAU * length / lambda + bounce_phase).rem_euclid(TAU);
        paths.push(PropagationPath {
            kind,
            length,
            delay: length / SPEED_OF_LIGHT,
            amplitude,
            phase,
            obstruction_db,
        });
    };

    // Direct path.
    push(
        PathKind::Direct,
        tx.distance(rx),
        0.0,
        plan.obstruction_db(tx, rx),
    );

    // First-order reflections.
    if config.reflection_order >= 1 {
        for ((seg, mat), line) in geom.surfaces.iter().zip(&geom.lines) {
            let Some(line) = line else { continue };
            if let Some((r, len)) = reflect_with_line(line, seg, tx, rx) {
                let obstruction = plan.obstruction_db(tx, r) + plan.obstruction_db(r, rx);
                push(PathKind::Reflection1, len, mat.reflection_db, obstruction);
            }
        }
    }

    // Second-order reflections.
    if config.reflection_order >= 2 {
        for (i, ((s1, m1), l1)) in geom.surfaces.iter().zip(&geom.lines).enumerate() {
            let Some(l1) = l1 else { continue };
            let img1 = l1.mirror(tx);
            for (j, ((s2, m2), l2)) in geom.surfaces.iter().zip(&geom.lines).enumerate() {
                if i == j {
                    continue;
                }
                let Some(l2) = l2 else { continue };
                let img2 = l2.mirror(img1);
                // Unfold backwards: RX ← R2 ← R1 ← TX.
                let Some(r2) = Segment::new(img2, rx).intersection_inclusive(s2) else {
                    continue;
                };
                let Some(r1) = Segment::new(img1, r2).intersection_inclusive(s1) else {
                    continue;
                };
                let len = tx.distance(r1) + r1.distance(r2) + r2.distance(rx);
                let obstruction = plan.obstruction_db(tx, r1)
                    + plan.obstruction_db(r1, r2)
                    + plan.obstruction_db(r2, rx);
                push(
                    PathKind::Reflection2,
                    len,
                    m1.reflection_db + m2.reflection_db,
                    obstruction,
                );
            }
        }
    }

    // Corner scattering.
    for &v in &geom.scatterers {
        let d1 = tx.distance(v);
        let d2 = v.distance(rx);
        if d1 < 1e-6 || d2 < 1e-6 {
            continue;
        }
        let obstruction = plan.obstruction_db(tx, v) + plan.obstruction_db(v, rx);
        push(
            PathKind::Scatter,
            d1 + d2,
            config.scatter_loss_db,
            obstruction,
        );
    }

    // Prune: sort by amplitude, apply dynamic range and count caps.
    paths.sort_by(|a, b| b.amplitude.total_cmp(&a.amplitude));
    if let Some(strongest) = paths.first().map(|p| p.amplitude) {
        let floor = strongest * 10f64.powf(-config.path_dynamic_range_db / 20.0);
        paths.retain(|p| p.amplitude >= floor);
    }
    paths.truncate(MAX_PATHS);
    LinkTrace { paths }
}

/// Finds the first-order specular reflection of `tx → seg → rx`.
///
/// Returns the reflection point and the unfolded path length.
#[cfg(test)]
fn reflect_once(seg: &Segment, tx: Point, rx: Point) -> Option<(Point, f64)> {
    let line = seg.line()?;
    reflect_with_line(&line, seg, tx, rx)
}

/// [`reflect_once`] with the segment's supporting line already computed.
fn reflect_with_line(line: &Line, seg: &Segment, tx: Point, rx: Point) -> Option<(Point, f64)> {
    // TX and RX must be on the same side for a specular bounce.
    let st = line.signed_distance(tx);
    let sr = line.signed_distance(rx);
    if st * sr <= 0.0 {
        return None;
    }
    let image = line.mirror(tx);
    let r = Segment::new(image, rx).intersection_inclusive(seg)?;
    Some((r, image.distance(rx)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Material;
    use nomloc_geometry::Polygon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn open_plan() -> FloorPlan {
        FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(20.0, 10.0),
        ))
        .build()
    }

    fn config() -> RadioConfig {
        RadioConfig::default()
    }

    #[test]
    fn direct_path_length_and_delay() {
        let t = trace_link(
            &open_plan(),
            &config(),
            Point::new(1.0, 1.0),
            Point::new(4.0, 5.0),
        );
        let d = t.direct().unwrap();
        assert!((d.length - 5.0).abs() < 1e-12);
        assert!((d.delay - 5.0 / SPEED_OF_LIGHT).abs() < 1e-20);
        assert_eq!(d.obstruction_db, 0.0);
        assert!(t.is_los());
    }

    #[test]
    fn direct_path_is_strongest_in_open_room() {
        let t = trace_link(
            &open_plan(),
            &config(),
            Point::new(2.0, 5.0),
            Point::new(10.0, 5.0),
        );
        assert_eq!(t.paths()[0].kind, PathKind::Direct);
        assert!(t.paths().len() > 1, "reflections expected off the walls");
    }

    #[test]
    fn first_order_reflection_geometry() {
        // TX (2,2), RX (6,2) reflecting off the floor wall y=0: specular
        // point at (4,0), length = 2·√(2²+2²)= 5.657.
        let t = trace_link(
            &open_plan(),
            &config(),
            Point::new(2.0, 2.0),
            Point::new(6.0, 2.0),
        );
        let expected = 2.0 * (2.0f64 * 2.0 + 2.0 * 2.0).sqrt();
        let found = t
            .paths()
            .iter()
            .any(|p| p.kind == PathKind::Reflection1 && (p.length - expected).abs() < 1e-9);
        assert!(found, "floor bounce of length {expected} not traced");
    }

    #[test]
    fn reflection_count_grows_with_order() {
        let plan = open_plan();
        let mut c0 = config();
        c0.reflection_order = 0;
        let mut c1 = config();
        c1.reflection_order = 1;
        let mut c2 = config();
        c2.reflection_order = 2;
        // Widen dynamic range so pruning doesn't mask the comparison.
        for c in [&mut c0, &mut c1, &mut c2] {
            c.path_dynamic_range_db = 120.0;
        }
        let tx = Point::new(3.0, 3.0);
        let rx = Point::new(15.0, 7.0);
        let n0 = trace_link(&plan, &c0, tx, rx).paths().len();
        let n1 = trace_link(&plan, &c1, tx, rx).paths().len();
        let n2 = trace_link(&plan, &c2, tx, rx).paths().len();
        assert!(n0 < n1 && n1 < n2, "{n0} {n1} {n2}");
        assert_eq!(n0, 1);
    }

    #[test]
    fn second_order_reflection_geometry() {
        // TX and RX midway between the floor (y = 0) and ceiling (y = 10)
        // of a 20 × 10 room, 8 m apart. The floor–ceiling double bounce
        // unfolds to a straight line in the twice-mirrored room: image of
        // TX over floor then ceiling sits at (tx.x, 2·10 + (−tx.y)) =
        // (6, 25)... simpler check: expected length = √(dx² + (2h)²) with
        // h = 10 m for the floor→ceiling bounce from mid-height.
        let tx = Point::new(6.0, 5.0);
        let rx = Point::new(14.0, 5.0);
        let mut c = config();
        c.path_dynamic_range_db = 120.0;
        let t = trace_link(&open_plan(), &c, tx, rx);
        let expected = (8.0f64 * 8.0 + 20.0 * 20.0).sqrt();
        let found = t
            .paths()
            .iter()
            .any(|p| p.kind == PathKind::Reflection2 && (p.length - expected).abs() < 1e-6);
        assert!(
            found,
            "floor–ceiling double bounce of length {expected:.3} missing"
        );
        // Side-wall double bounce (x = 0 then x = 20), both endpoints at
        // the same height: 6 m to the left wall + 20 m across + 6 m back
        // to RX = 32 m (image of TX over x=0 is (−6,5), re-mirrored over
        // x=20 is (46,5); |46 − 14| = 32).
        let side = 32.0f64;
        let found_side = t
            .paths()
            .iter()
            .any(|p| p.kind == PathKind::Reflection2 && (p.length - side).abs() < 1e-6);
        assert!(
            found_side,
            "wall–wall double bounce of length {side} missing"
        );
    }

    #[test]
    fn nlos_attenuates_direct_path() {
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(20.0, 10.0),
        ))
        .wall(
            Segment::new(Point::new(10.0, 0.0), Point::new(10.0, 10.0)),
            Material::CONCRETE,
        )
        .build();
        let tx = Point::new(5.0, 5.0);
        let rx = Point::new(15.0, 5.0);
        let blocked = trace_link(&plan, &config(), tx, rx);
        let open = trace_link(&open_plan(), &config(), tx, rx);
        assert!(!blocked.is_los());
        assert!(open.is_los());
        let d_blocked = blocked.direct().unwrap();
        let d_open = open.direct().unwrap();
        assert!(d_blocked.amplitude < d_open.amplitude);
        // Exactly the concrete penetration loss apart.
        let db = 20.0 * (d_open.amplitude / d_blocked.amplitude).log10();
        assert!((db - Material::CONCRETE.penetration_db).abs() < 1e-9);
    }

    #[test]
    fn nlos_peak_may_be_reflection() {
        // Heavy obstruction on the direct path, clean bounce available:
        // the strongest path is no longer the direct one — the Fig. 3
        // dichotomy.
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(20.0, 10.0),
        ))
        .rect_obstacle(Point::new(9.0, 4.0), Point::new(11.0, 6.0), Material::METAL)
        .build();
        let t = trace_link(
            &plan,
            &config(),
            Point::new(5.0, 5.0),
            Point::new(15.0, 5.0),
        );
        assert_ne!(t.paths()[0].kind, PathKind::Direct);
        assert!(!t.is_los());
    }

    #[test]
    fn rss_decays_with_distance() {
        let plan = open_plan();
        let tx = Point::new(1.0, 5.0);
        let mut prev = f64::INFINITY;
        for d in [2.0, 5.0, 10.0, 18.0] {
            let rss = trace_link(&plan, &config(), tx, Point::new(1.0 + d, 5.0)).rss_dbm();
            assert!(rss < prev, "rss {rss} at {d} m not below {prev}");
            prev = rss;
        }
    }

    #[test]
    fn rss_in_sane_dbm_range() {
        let t = trace_link(
            &open_plan(),
            &config(),
            Point::new(2.0, 5.0),
            Point::new(12.0, 5.0),
        );
        let rss = t.rss_dbm();
        assert!((-90.0..0.0).contains(&rss), "rss {rss} dBm");
    }

    #[test]
    fn csi_subcarrier_count_matches_grid() {
        let t = trace_link(
            &open_plan(),
            &config(),
            Point::new(2.0, 2.0),
            Point::new(9.0, 7.0),
        );
        assert_eq!(t.csi(&SubcarrierGrid::intel5300()).len(), 30);
        assert_eq!(t.csi(&SubcarrierGrid::full_80211n_20mhz()).len(), 56);
    }

    #[test]
    fn csi_energy_matches_path_power_roughly() {
        let t = trace_link(
            &open_plan(),
            &config(),
            Point::new(2.0, 2.0),
            Point::new(9.0, 7.0),
        );
        let grid = SubcarrierGrid::full_80211n_20mhz();
        let h = t.csi(&grid);
        let mean_sq: f64 = h.iter().map(|z| z.norm_sq()).sum::<f64>() / h.len() as f64;
        let total: f64 = t.paths().iter().map(|p| p.power_mw()).sum();
        // Frequency-selective fading moves per-subcarrier power around but
        // the band average stays within a few dB of the path-power sum.
        let ratio_db = 10.0 * (mean_sq / total).log10();
        assert!(ratio_db.abs() < 6.0, "ratio {ratio_db} dB");
    }

    #[test]
    fn sampled_csi_differs_per_packet_but_same_magnitude_scale() {
        let t = trace_link(
            &open_plan(),
            &config(),
            Point::new(2.0, 2.0),
            Point::new(12.0, 7.0),
        );
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(8);
        let a = t.sample_csi(&config(), &grid, &mut rng);
        let b = t.sample_csi(&config(), &grid, &mut rng);
        assert_ne!(a.h, b.h, "per-packet noise/phase must differ");
        let pa: f64 = a.h.iter().map(|z| z.norm_sq()).sum();
        let pb: f64 = b.h.iter().map(|z| z.norm_sq()).sum();
        assert!((10.0 * (pa / pb).log10()).abs() < 3.0);
    }

    #[test]
    fn dynamic_range_prunes_weak_paths() {
        let mut tight = config();
        tight.path_dynamic_range_db = 3.0;
        let mut loose = config();
        loose.path_dynamic_range_db = 100.0;
        let tx = Point::new(3.0, 3.0);
        let rx = Point::new(16.0, 8.0);
        let nt = trace_link(&open_plan(), &tight, tx, rx).paths().len();
        let nl = trace_link(&open_plan(), &loose, tx, rx).paths().len();
        assert!(nt < nl);
    }

    #[test]
    fn cached_trace_is_bit_identical() {
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(20.0, 10.0),
        ))
        .wall(
            Segment::new(Point::new(10.0, 0.0), Point::new(10.0, 6.0)),
            Material::CONCRETE,
        )
        .rect_obstacle(Point::new(4.0, 7.0), Point::new(6.0, 9.0), Material::METAL)
        .build();
        let geom = TraceGeometry::new(&plan);
        let mut c = config();
        c.path_dynamic_range_db = 120.0;
        for (tx, rx) in [
            (Point::new(1.0, 1.0), Point::new(18.0, 8.0)),
            (Point::new(5.0, 5.0), Point::new(15.0, 5.0)),
            (Point::new(2.0, 8.0), Point::new(8.0, 2.0)),
        ] {
            let fresh = trace_link(&plan, &c, tx, rx);
            let cached = trace_link_cached(&plan, &c, &geom, tx, rx);
            // Full struct equality, no tolerance: same floats, same order.
            assert_eq!(fresh, cached);
        }
    }

    #[test]
    fn trace_geometry_accessors() {
        let plan = open_plan();
        let geom = TraceGeometry::new(&plan);
        assert_eq!(geom.surfaces().len(), 4, "four boundary edges");
        assert!(geom.scatterers().is_empty());
    }

    #[test]
    fn reflect_once_rejects_opposite_sides() {
        let seg = Segment::new(Point::new(0.0, 5.0), Point::new(10.0, 5.0));
        // TX below, RX above the wall: no specular bounce.
        assert!(reflect_once(&seg, Point::new(2.0, 2.0), Point::new(8.0, 8.0)).is_none());
        // Both below: bounce exists.
        assert!(reflect_once(&seg, Point::new(2.0, 2.0), Point::new(8.0, 2.0)).is_some());
    }

    #[test]
    fn reflect_once_requires_hit_within_segment() {
        let seg = Segment::new(Point::new(0.0, 5.0), Point::new(1.0, 5.0));
        // Specular point would be at x = 5, beyond the short segment.
        assert!(reflect_once(&seg, Point::new(2.0, 2.0), Point::new(8.0, 2.0)).is_none());
    }
}
