//! Indoor RF propagation and 802.11n CSI simulation.
//!
//! The NomLoc paper evaluates on physical hardware: TL-WR941ND 802.11n
//! routers as APs and an Intel 5300 NIC exporting per-subcarrier channel
//! state information (CSI). Neither exists in a pure-Rust environment, so
//! this crate is the substitution substrate: a physically grounded 2-D
//! indoor propagation simulator producing the same artefact the NomLoc
//! algorithms consume — a complex CSI vector per packet, shaped by
//! line-of-sight, multipath reflections, and obstacle-induced NLOS.
//!
//! The model is an image-method ray tracer:
//!
//! * the **direct path** carries log-distance path loss plus the penetration
//!   loss of every wall/obstacle it crosses (this is what makes a link
//!   NLOS);
//! * **specular reflections** up to second order are found by mirroring the
//!   transmitter across wall segments (the same mirror operation NomLoc
//!   itself uses for virtual APs);
//! * **scattered paths** bounce off obstacle corners with a fixed
//!   scattering penalty, supplying the dense low-power multipath tail of
//!   real venues.
//!
//! Each path contributes `a·e^{jφ}·e^{−j2πfτ}` per subcarrier; per-packet
//! noise, random common phase and sampling-time offset reproduce the
//! measurement impairments of a real NIC.
//!
//! # Example
//!
//! ```
//! use nomloc_geometry::{Point, Polygon};
//! use nomloc_rfsim::{Environment, FloorPlan, RadioConfig, SubcarrierGrid};
//! use rand::SeedableRng;
//!
//! let plan = FloorPlan::builder(Polygon::rectangle(
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 8.0),
//! ))
//! .build();
//! let env = Environment::new(plan, RadioConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let csi = env.sample_csi(
//!     Point::new(1.0, 1.0),
//!     Point::new(9.0, 7.0),
//!     &SubcarrierGrid::intel5300(),
//!     &mut rng,
//! );
//! assert_eq!(csi.h.len(), 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod csi;
mod material;
mod pathloss;
mod plan;
mod trace;

pub use array::AntennaArray;
pub use csi::{CsiSnapshot, SubcarrierGrid};
pub use material::Material;
pub use pathloss::RadioConfig;
pub use plan::{FloorPlan, FloorPlanBuilder, Obstacle, Wall};
pub use trace::{
    trace_link, trace_link_cached, LinkTrace, PathKind, PropagationPath, TraceGeometry,
};

use nomloc_geometry::Point;
use rand::Rng;

/// A simulated radio environment: a floor plan plus radio parameters.
///
/// Construction precomputes the plan's [`TraceGeometry`] (reflective
/// surfaces, their supporting lines, scatter corners) so every
/// [`Environment::trace`] call reuses it instead of rebuilding it per
/// link.
///
/// This is the top-level entry point; see the [crate docs](self) for the
/// propagation model.
#[derive(Debug, Clone)]
pub struct Environment {
    plan: FloorPlan,
    config: RadioConfig,
    geometry: TraceGeometry,
}

impl Environment {
    /// Creates an environment from a floor plan and radio configuration,
    /// precomputing the plan's ray-tracing geometry.
    pub fn new(plan: FloorPlan, config: RadioConfig) -> Self {
        let geometry = TraceGeometry::new(&plan);
        Environment {
            plan,
            config,
            geometry,
        }
    }

    /// The floor plan.
    pub fn plan(&self) -> &FloorPlan {
        &self.plan
    }

    /// The radio configuration.
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// The precomputed ray-tracing geometry of the floor plan.
    pub fn trace_geometry(&self) -> &TraceGeometry {
        &self.geometry
    }

    /// Traces all propagation paths between `tx` and `rx`.
    ///
    /// Deterministic: all randomness lives in the per-packet sampling.
    ///
    /// # Example
    ///
    /// ```
    /// use nomloc_geometry::{Point, Polygon};
    /// use nomloc_rfsim::{Environment, FloorPlan, RadioConfig};
    ///
    /// let plan = FloorPlan::builder(Polygon::rectangle(
    ///     Point::new(0.0, 0.0),
    ///     Point::new(10.0, 6.0),
    /// ))
    /// .build();
    /// let env = Environment::new(plan, RadioConfig::default());
    /// let trace = env.trace(Point::new(1.0, 3.0), Point::new(9.0, 3.0));
    /// assert!(trace.is_los());
    /// assert!((trace.direct().unwrap().length - 8.0).abs() < 1e-9);
    /// ```
    pub fn trace(&self, tx: Point, rx: Point) -> LinkTrace {
        trace::trace_link_cached(&self.plan, &self.config, &self.geometry, tx, rx)
    }

    /// Samples one noisy CSI snapshot for the `tx → rx` link.
    pub fn sample_csi<R: Rng + ?Sized>(
        &self,
        tx: Point,
        rx: Point,
        grid: &SubcarrierGrid,
        rng: &mut R,
    ) -> CsiSnapshot {
        self.trace(tx, rx).sample_csi(&self.config, grid, rng)
    }

    /// Samples `n` independent CSI snapshots (one per probe packet).
    pub fn sample_csi_burst<R: Rng + ?Sized>(
        &self,
        tx: Point,
        rx: Point,
        grid: &SubcarrierGrid,
        n: usize,
        rng: &mut R,
    ) -> Vec<CsiSnapshot> {
        let trace = self.trace(tx, rx);
        (0..n)
            .map(|_| trace.sample_csi(&self.config, grid, rng))
            .collect()
    }

    /// Samples a burst per receive-array element: `result[k]` holds the
    /// `n` snapshots seen by antenna `k`. Each element gets its own ray
    /// trace, so closely spaced antennas see correlated large-scale but
    /// independently phased multipath — the spatial diversity the Intel
    /// 5300's three receive chains provide.
    pub fn sample_csi_array<R: Rng + ?Sized>(
        &self,
        tx: Point,
        array: &AntennaArray,
        grid: &SubcarrierGrid,
        n: usize,
        rng: &mut R,
    ) -> Vec<Vec<CsiSnapshot>> {
        array
            .positions()
            .into_iter()
            .map(|rx| self.sample_csi_burst(tx, rx, grid, n, rng))
            .collect()
    }

    /// Samples a noisy RSS measurement in dBm (log-normal shadowing plus
    /// the deterministic multipath sum). This is what RSS-based baselines
    /// see instead of CSI.
    pub fn sample_rss_dbm<R: Rng + ?Sized>(&self, tx: Point, rx: Point, rng: &mut R) -> f64 {
        let trace = self.trace(tx, rx);
        trace.rss_dbm() + self.config.shadowing_sigma_db * gaussian(rng)
    }

    /// Returns `true` when the direct path is unobstructed.
    pub fn is_los(&self, tx: Point, rx: Point) -> bool {
        self.plan.obstruction_db(tx, rx) == 0.0
    }
}

/// Standard-normal draw via Box–Muller (keeps `rand` the only RNG dep).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomloc_geometry::Polygon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn open_room() -> Environment {
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(20.0, 10.0),
        ))
        .build();
        Environment::new(plan, RadioConfig::default())
    }

    #[test]
    fn closer_link_has_more_power() {
        let env = open_room();
        let tx = Point::new(1.0, 5.0);
        let near = env.trace(tx, Point::new(3.0, 5.0)).rss_dbm();
        let far = env.trace(tx, Point::new(18.0, 5.0)).rss_dbm();
        assert!(near > far, "near {near} dBm vs far {far} dBm");
    }

    #[test]
    fn los_in_empty_room() {
        let env = open_room();
        assert!(env.is_los(Point::new(1.0, 1.0), Point::new(19.0, 9.0)));
    }

    #[test]
    fn wall_blocks_los() {
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(20.0, 10.0),
        ))
        .wall(
            nomloc_geometry::Segment::new(Point::new(10.0, 0.0), Point::new(10.0, 10.0)),
            Material::CONCRETE,
        )
        .build();
        let env = Environment::new(plan, RadioConfig::default());
        assert!(!env.is_los(Point::new(5.0, 5.0), Point::new(15.0, 5.0)));
        assert!(env.is_los(Point::new(5.0, 5.0), Point::new(8.0, 5.0)));
    }

    #[test]
    fn csi_burst_has_requested_size() {
        let env = open_room();
        let mut rng = StdRng::seed_from_u64(2);
        let burst = env.sample_csi_burst(
            Point::new(2.0, 2.0),
            Point::new(12.0, 8.0),
            &SubcarrierGrid::intel5300(),
            5,
            &mut rng,
        );
        assert_eq!(burst.len(), 5);
        for snap in &burst {
            assert_eq!(snap.h.len(), 30);
            assert!(snap.h.iter().all(|z| z.is_finite()));
        }
    }

    #[test]
    fn rss_sampling_is_noisy_but_centered() {
        let env = open_room();
        let mut rng = StdRng::seed_from_u64(3);
        let tx = Point::new(2.0, 5.0);
        let rx = Point::new(10.0, 5.0);
        let clean = env.trace(tx, rx).rss_dbm();
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| env.sample_rss_dbm(tx, rx, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - clean).abs() < 0.2, "mean {mean} vs clean {clean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
