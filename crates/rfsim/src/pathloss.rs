//! Radio parameters and large-scale path loss.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Radio-layer configuration of the simulated 802.11n system.
///
/// Defaults model the paper's testbed: 2.4 GHz band (channel 6), 20 MHz
/// bandwidth, consumer-router transmit power, and typical indoor clutter
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioConfig {
    /// Carrier frequency, Hz.
    pub carrier_hz: f64,
    /// Channel bandwidth, Hz.
    pub bandwidth_hz: f64,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Total in-band noise power at the receiver, dBm (thermal + NF).
    pub noise_floor_dbm: f64,
    /// Log-distance path-loss exponent (2.0 = free space).
    pub path_loss_exponent: f64,
    /// Maximum specular reflection order traced (0, 1, or 2).
    pub reflection_order: u8,
    /// Extra loss applied to corner-scattered paths, dB.
    pub scatter_loss_db: f64,
    /// Log-normal shadowing standard deviation for RSS sampling, dB.
    pub shadowing_sigma_db: f64,
    /// Maximum sampling-time offset per packet, seconds (uniform draw).
    pub sto_max_s: f64,
    /// Per-packet Gaussian phase jitter applied to each *bounced* path,
    /// radians per bounce. Models centimetre-scale motion of the device
    /// carrier and ambient people between packets, which decorrelates the
    /// reflection phases while leaving the direct path stable.
    pub bounce_phase_jitter_rad: f64,
    /// Paths weaker than the strongest by more than this are dropped, dB.
    pub path_dynamic_range_db: f64,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            carrier_hz: 2.437e9, // 802.11 channel 6
            bandwidth_hz: 20e6,
            tx_power_dbm: 15.0,
            noise_floor_dbm: -92.0,
            path_loss_exponent: 2.0,
            reflection_order: 2,
            scatter_loss_db: 25.0,
            shadowing_sigma_db: 2.5,
            sto_max_s: 20e-9,
            bounce_phase_jitter_rad: 1.2,
            path_dynamic_range_db: 45.0,
        }
    }
}

impl RadioConfig {
    /// Carrier wavelength, metres.
    pub fn wavelength(&self) -> f64 {
        SPEED_OF_LIGHT / self.carrier_hz
    }

    /// Log-distance path loss at `distance` metres, in dB.
    ///
    /// `PL(d) = PL(1 m) + 10·n·log₁₀(d)`, with the 1 m intercept taken from
    /// free space (Friis). Distances below 10 cm are clamped to avoid the
    /// near-field singularity.
    pub fn path_loss_db(&self, distance: f64) -> f64 {
        let d = distance.max(0.1);
        let fspl_1m = 20.0 * (4.0 * std::f64::consts::PI / self.wavelength()).log10();
        fspl_1m + 10.0 * self.path_loss_exponent * d.log10()
    }

    /// Linear field amplitude (√mW) of a path with `total_loss_db` of
    /// path + penetration + reflection loss.
    pub fn amplitude(&self, total_loss_db: f64) -> f64 {
        10f64.powf((self.tx_power_dbm - total_loss_db) / 20.0)
    }

    /// Received SNR in dB for a given received power.
    pub fn snr_db(&self, rx_power_dbm: f64) -> f64 {
        rx_power_dbm - self.noise_floor_dbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_at_2_4ghz() {
        let c = RadioConfig::default();
        assert!((c.wavelength() - 0.123).abs() < 0.001, "{}", c.wavelength());
    }

    #[test]
    fn free_space_path_loss_reference_values() {
        let c = RadioConfig::default();
        // FSPL at 1 m / 2.437 GHz ≈ 40.2 dB.
        assert!((c.path_loss_db(1.0) - 40.2).abs() < 0.3);
        // +20 dB per decade at n = 2.
        assert!((c.path_loss_db(10.0) - c.path_loss_db(1.0) - 20.0).abs() < 1e-9);
        assert!((c.path_loss_db(100.0) - c.path_loss_db(10.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let c = RadioConfig::default();
        let mut prev = c.path_loss_db(0.5);
        for d in [1.0, 2.0, 5.0, 10.0, 50.0] {
            let pl = c.path_loss_db(d);
            assert!(pl > prev);
            prev = pl;
        }
    }

    #[test]
    fn near_field_clamped() {
        let c = RadioConfig::default();
        assert_eq!(c.path_loss_db(0.0), c.path_loss_db(0.1));
        assert_eq!(c.path_loss_db(0.05), c.path_loss_db(0.1));
    }

    #[test]
    fn higher_exponent_means_more_loss() {
        let free = RadioConfig::default();
        let cluttered = RadioConfig {
            path_loss_exponent: 3.5,
            ..RadioConfig::default()
        };
        assert!(cluttered.path_loss_db(10.0) > free.path_loss_db(10.0));
        // Equal at the 1 m intercept.
        assert!((cluttered.path_loss_db(1.0) - free.path_loss_db(1.0)).abs() < 1e-9);
    }

    #[test]
    fn amplitude_is_20db_per_decade() {
        let c = RadioConfig::default();
        let a = c.amplitude(60.0);
        let b = c.amplitude(80.0);
        assert!((a / b - 10.0).abs() < 1e-9);
    }

    #[test]
    fn amplitude_squared_is_power() {
        let c = RadioConfig::default();
        // 15 dBm TX − 55 dB loss = −40 dBm = 1e-4 mW.
        let a = c.amplitude(55.0);
        assert!((a * a - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn snr_definition() {
        let c = RadioConfig::default();
        assert_eq!(c.snr_db(-62.0), 30.0);
    }
}
