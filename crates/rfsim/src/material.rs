//! Building materials and their RF properties.

use std::fmt;

/// RF properties of a wall or obstacle material.
///
/// Penetration values follow the commonly cited 2.4 GHz measurement
/// literature (e.g. interior drywall ≈ 3 dB, brick/concrete ≈ 10–15 dB,
/// metal ≈ 25+ dB); reflection losses are the complement — good penetrators
/// reflect poorly and vice versa.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Attenuation applied to a ray crossing the material once, in dB.
    pub penetration_db: f64,
    /// Loss applied to a specular reflection off the material, in dB.
    pub reflection_db: f64,
}

impl Material {
    /// Poured concrete / brick structural wall.
    pub const CONCRETE: Material = Material {
        penetration_db: 13.0,
        reflection_db: 8.0,
    };

    /// Interior drywall / plasterboard partition.
    pub const DRYWALL: Material = Material {
        penetration_db: 3.0,
        reflection_db: 12.0,
    };

    /// Glass pane or glazed partition.
    pub const GLASS: Material = Material {
        penetration_db: 2.0,
        reflection_db: 11.0,
    };

    /// Metal cabinet, server rack, or elevator door: near-opaque, highly
    /// reflective.
    pub const METAL: Material = Material {
        penetration_db: 26.0,
        reflection_db: 3.0,
    };

    /// Wooden furniture, doors, desks.
    pub const WOOD: Material = Material {
        penetration_db: 5.0,
        reflection_db: 11.0,
    };

    /// Office cubicle partition (fabric over thin board).
    pub const CUBICLE: Material = Material {
        penetration_db: 4.0,
        reflection_db: 14.0,
    };

    /// A human body (the nomadic-AP carrier, bystanders).
    pub const HUMAN: Material = Material {
        penetration_db: 8.0,
        reflection_db: 7.0,
    };

    /// Creates a material from explicit penetration and reflection losses.
    ///
    /// # Panics
    ///
    /// Panics when either loss is negative or non-finite.
    pub fn new(penetration_db: f64, reflection_db: f64) -> Self {
        assert!(
            penetration_db >= 0.0 && penetration_db.is_finite(),
            "penetration loss must be ≥ 0 dB"
        );
        assert!(
            reflection_db >= 0.0 && reflection_db.is_finite(),
            "reflection loss must be ≥ 0 dB"
        );
        Material {
            penetration_db,
            reflection_db,
        }
    }
}

impl fmt::Display for Material {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Material(pen {:.1} dB, refl {:.1} dB)",
            self.penetration_db, self.reflection_db
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the orderings ARE the spec
    fn presets_are_ordered_sensibly() {
        // Metal blocks more than concrete, which blocks more than drywall.
        assert!(Material::METAL.penetration_db > Material::CONCRETE.penetration_db);
        assert!(Material::CONCRETE.penetration_db > Material::DRYWALL.penetration_db);
        // Metal reflects better (loses less) than drywall.
        assert!(Material::METAL.reflection_db < Material::DRYWALL.reflection_db);
    }

    #[test]
    fn custom_material() {
        let m = Material::new(7.5, 6.0);
        assert_eq!(m.penetration_db, 7.5);
        assert_eq!(m.reflection_db, 6.0);
        assert!(format!("{m}").contains("7.5"));
    }

    #[test]
    #[should_panic(expected = "penetration loss")]
    fn rejects_negative_penetration() {
        let _ = Material::new(-1.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "reflection loss")]
    fn rejects_nan_reflection() {
        let _ = Material::new(1.0, f64::NAN);
    }
}
