//! Floor plans: boundaries, interior walls, and obstacles.

use crate::Material;
use nomloc_geometry::{Point, Polygon, Segment};

/// An interior wall: a segment with a material.
#[derive(Debug, Clone, PartialEq)]
pub struct Wall {
    /// Wall geometry.
    pub segment: Segment,
    /// Wall material (penetration + reflection losses).
    pub material: Material,
}

/// A solid obstacle: a polygon with a material (desk clusters, racks,
/// pillars, the "substantial equipments and office facilities" of the
/// paper's Lab scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct Obstacle {
    /// Obstacle footprint.
    pub shape: Polygon,
    /// Obstacle material.
    pub material: Material,
}

/// A 2-D floor plan: the area-of-interest boundary plus interior clutter.
///
/// Construct via [`FloorPlan::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct FloorPlan {
    boundary: Polygon,
    boundary_material: Material,
    walls: Vec<Wall>,
    obstacles: Vec<Obstacle>,
}

/// Builder for [`FloorPlan`].
#[derive(Debug, Clone)]
pub struct FloorPlanBuilder {
    plan: FloorPlan,
}

impl FloorPlan {
    /// Starts building a plan with the given boundary polygon.
    ///
    /// The boundary material defaults to [`Material::CONCRETE`].
    pub fn builder(boundary: Polygon) -> FloorPlanBuilder {
        FloorPlanBuilder {
            plan: FloorPlan {
                boundary,
                boundary_material: Material::CONCRETE,
                walls: Vec::new(),
                obstacles: Vec::new(),
            },
        }
    }

    /// The area-of-interest boundary.
    pub fn boundary(&self) -> &Polygon {
        &self.boundary
    }

    /// Interior walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Obstacles.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// All reflective surfaces: boundary edges, interior walls, and
    /// obstacle edges, each with its material.
    pub fn reflective_surfaces(&self) -> Vec<(Segment, Material)> {
        let mut out: Vec<(Segment, Material)> = self
            .boundary
            .edges()
            .map(|e| (e, self.boundary_material))
            .collect();
        out.extend(self.walls.iter().map(|w| (w.segment, w.material)));
        for ob in &self.obstacles {
            out.extend(ob.shape.edges().map(|e| (e, ob.material)));
        }
        out
    }

    /// Total penetration loss, in dB, accumulated by a ray from `a` to `b`
    /// crossing interior walls and obstacle edges.
    ///
    /// Zero means the path is line-of-sight. The boundary itself does not
    /// attenuate (both endpoints are assumed inside).
    pub fn obstruction_db(&self, a: Point, b: Point) -> f64 {
        let ray = Segment::new(a, b);
        let mut loss = 0.0;
        for w in &self.walls {
            if ray.intersects(&w.segment) {
                loss += w.material.penetration_db;
            }
        }
        for ob in &self.obstacles {
            // Each edge crossing is one air/material interface; a full
            // traversal crosses two, so charge half the penetration loss
            // per crossing. Rays ending inside the obstacle get one.
            let crossings = ob.shape.edges().filter(|e| ray.intersects(e)).count();
            loss += ob.material.penetration_db * crossings as f64 / 2.0;
        }
        loss
    }

    /// Returns `true` when the segment `a → b` has no obstruction.
    pub fn is_los(&self, a: Point, b: Point) -> bool {
        self.obstruction_db(a, b) == 0.0
    }

    /// Returns `true` when `p` lies inside the boundary and outside every
    /// obstacle — a legal position for an AP or an object.
    pub fn is_placeable(&self, p: Point) -> bool {
        self.boundary.contains(p) && !self.obstacles.iter().any(|o| o.shape.contains(p))
    }

    /// A copy of the plan with one more obstacle — used for transient
    /// clutter such as the human body carrying a nomadic AP.
    pub fn with_obstacle(&self, shape: Polygon, material: Material) -> FloorPlan {
        let mut plan = self.clone();
        plan.obstacles.push(Obstacle { shape, material });
        plan
    }

    /// Copy scaled by `factor` about `origin` — venue-size studies reuse a
    /// layout at different physical scales.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not strictly positive and finite.
    pub fn scaled(&self, origin: Point, factor: f64) -> FloorPlan {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive"
        );
        let scale_pt = |p: Point| origin + (p - origin) * factor;
        FloorPlan {
            boundary: self.boundary.scaled(origin, factor),
            boundary_material: self.boundary_material,
            walls: self
                .walls
                .iter()
                .map(|w| Wall {
                    segment: Segment::new(scale_pt(w.segment.a), scale_pt(w.segment.b)),
                    material: w.material,
                })
                .collect(),
            obstacles: self
                .obstacles
                .iter()
                .map(|o| Obstacle {
                    shape: o.shape.scaled(origin, factor),
                    material: o.material,
                })
                .collect(),
        }
    }

    /// Scatter points: obstacle corners, where diffuse multipath
    /// originates.
    pub fn scatterers(&self) -> Vec<Point> {
        self.obstacles
            .iter()
            .flat_map(|o| o.shape.vertices().iter().copied())
            .collect()
    }
}

impl FloorPlanBuilder {
    /// Sets the boundary wall material (default concrete).
    pub fn boundary_material(mut self, material: Material) -> Self {
        self.plan.boundary_material = material;
        self
    }

    /// Adds an interior wall.
    pub fn wall(mut self, segment: Segment, material: Material) -> Self {
        self.plan.walls.push(Wall { segment, material });
        self
    }

    /// Adds an obstacle.
    pub fn obstacle(mut self, shape: Polygon, material: Material) -> Self {
        self.plan.obstacles.push(Obstacle { shape, material });
        self
    }

    /// Adds an axis-aligned rectangular obstacle.
    pub fn rect_obstacle(self, min: Point, max: Point, material: Material) -> Self {
        self.obstacle(Polygon::rectangle(min, max), material)
    }

    /// Finishes the plan.
    pub fn build(self) -> FloorPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> FloorPlan {
        FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
        ))
        .wall(
            Segment::new(Point::new(5.0, 0.0), Point::new(5.0, 6.0)),
            Material::DRYWALL,
        )
        .rect_obstacle(Point::new(7.0, 7.0), Point::new(9.0, 9.0), Material::METAL)
        .build()
    }

    #[test]
    fn obstruction_through_wall() {
        let plan = room();
        let loss = plan.obstruction_db(Point::new(2.0, 3.0), Point::new(8.0, 3.0));
        assert_eq!(loss, Material::DRYWALL.penetration_db);
    }

    #[test]
    fn obstruction_above_wall_is_clear() {
        let plan = room();
        assert!(plan.is_los(Point::new(2.0, 8.0), Point::new(4.0, 8.0)));
        assert_eq!(
            plan.obstruction_db(Point::new(2.0, 8.0), Point::new(4.0, 8.0)),
            0.0
        );
    }

    #[test]
    fn obstruction_through_obstacle_charges_two_crossings() {
        let plan = room();
        // Straight through the metal cabinet: two edge crossings = full
        // penetration loss.
        let loss = plan.obstruction_db(Point::new(6.0, 8.0), Point::new(9.5, 8.0));
        assert_eq!(loss, Material::METAL.penetration_db);
    }

    #[test]
    fn ray_ending_inside_obstacle_charges_one_crossing() {
        let plan = room();
        let loss = plan.obstruction_db(Point::new(6.0, 8.0), Point::new(8.0, 8.0));
        assert_eq!(loss, Material::METAL.penetration_db / 2.0);
    }

    #[test]
    fn combined_obstruction_accumulates() {
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
        ))
        .wall(
            Segment::new(Point::new(3.0, 0.0), Point::new(3.0, 10.0)),
            Material::DRYWALL,
        )
        .wall(
            Segment::new(Point::new(6.0, 0.0), Point::new(6.0, 10.0)),
            Material::GLASS,
        )
        .build();
        let loss = plan.obstruction_db(Point::new(1.0, 5.0), Point::new(9.0, 5.0));
        assert_eq!(
            loss,
            Material::DRYWALL.penetration_db + Material::GLASS.penetration_db
        );
    }

    #[test]
    fn placeability() {
        let plan = room();
        assert!(plan.is_placeable(Point::new(1.0, 1.0)));
        assert!(!plan.is_placeable(Point::new(8.0, 8.0))); // inside cabinet
        assert!(!plan.is_placeable(Point::new(15.0, 5.0))); // outside room
    }

    #[test]
    fn reflective_surfaces_cover_everything() {
        let plan = room();
        // 4 boundary edges + 1 wall + 4 obstacle edges.
        assert_eq!(plan.reflective_surfaces().len(), 9);
    }

    #[test]
    fn scatterers_are_obstacle_corners() {
        let plan = room();
        let sc = plan.scatterers();
        assert_eq!(sc.len(), 4);
        assert!(sc.contains(&Point::new(7.0, 7.0)));
    }

    #[test]
    fn with_obstacle_adds_transient_clutter() {
        let base = room();
        let n = base.obstacles().len();
        let more = base.with_obstacle(
            Polygon::rectangle(Point::new(1.0, 1.0), Point::new(1.4, 1.4)),
            Material::HUMAN,
        );
        assert_eq!(more.obstacles().len(), n + 1);
        assert_eq!(base.obstacles().len(), n, "original untouched");
        assert!(!more.is_placeable(Point::new(1.2, 1.2)));
    }

    #[test]
    fn scaled_plan_scales_everything() {
        let plan = room().scaled(Point::ORIGIN, 2.0);
        assert!((plan.boundary().area() - 400.0).abs() < 1e-9);
        assert_eq!(plan.walls().len(), 1);
        assert!((plan.walls()[0].segment.length() - 12.0).abs() < 1e-9);
        assert!(
            !plan.is_placeable(Point::new(16.0, 16.0)),
            "obstacle scaled too"
        );
    }

    #[test]
    fn builder_boundary_material() {
        let plan = FloorPlan::builder(Polygon::rectangle(
            Point::new(0.0, 0.0),
            Point::new(4.0, 4.0),
        ))
        .boundary_material(Material::GLASS)
        .build();
        let surfaces = plan.reflective_surfaces();
        assert!(surfaces.iter().all(|(_, m)| *m == Material::GLASS));
    }
}
