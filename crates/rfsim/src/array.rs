//! Receive antenna arrays.
//!
//! The Intel 5300 NIC of the paper's testbed reports CSI for up to three
//! receive antennas; spatially separated elements see independently faded
//! multipath, and selection combining across them stabilizes the PDP.
//! [`AntennaArray`] models a uniform linear array around an AP's nominal
//! position.

use crate::pathloss::SPEED_OF_LIGHT;
use nomloc_geometry::{Point, Vec2};

/// A uniform linear antenna array centred on an AP position.
///
/// # Example
///
/// ```
/// use nomloc_geometry::Point;
/// use nomloc_rfsim::AntennaArray;
///
/// // The Intel 5300's three λ/2-spaced receive chains at 2.437 GHz.
/// let array = AntennaArray::half_wavelength(Point::new(3.0, 2.0), 3, 2.437e9);
/// assert_eq!(array.positions().len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AntennaArray {
    center: Point,
    count: usize,
    spacing: f64,
    orientation: Vec2,
}

impl AntennaArray {
    /// A single antenna at `center` (no array gain).
    pub fn single(center: Point) -> Self {
        AntennaArray {
            center,
            count: 1,
            spacing: 0.0,
            orientation: Vec2::new(1.0, 0.0),
        }
    }

    /// A uniform linear array of `count` elements spaced `spacing` metres
    /// along `orientation`.
    ///
    /// # Panics
    ///
    /// Panics when `count == 0`, `spacing` is negative/non-finite, or the
    /// orientation is a (near-)zero vector.
    pub fn linear(center: Point, count: usize, spacing: f64, orientation: Vec2) -> Self {
        assert!(count >= 1, "array needs at least one element");
        assert!(
            spacing >= 0.0 && spacing.is_finite(),
            "element spacing must be ≥ 0"
        );
        let orientation = orientation
            .normalized()
            .expect("array orientation must be non-zero");
        AntennaArray {
            center,
            count,
            spacing,
            orientation,
        }
    }

    /// The standard λ/2-spaced array at `carrier_hz` (three elements by
    /// default, like the Intel 5300).
    pub fn half_wavelength(center: Point, count: usize, carrier_hz: f64) -> Self {
        let lambda = SPEED_OF_LIGHT / carrier_hz;
        AntennaArray::linear(center, count, lambda / 2.0, Vec2::new(1.0, 0.0))
    }

    /// Nominal (center) position.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` only for a zero-element array, which cannot be constructed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Element positions, centred on the array center.
    pub fn positions(&self) -> Vec<Point> {
        let half_span = (self.count - 1) as f64 * self.spacing / 2.0;
        (0..self.count)
            .map(|k| self.center + self.orientation * (k as f64 * self.spacing - half_span))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element_at_center() {
        let a = AntennaArray::single(Point::new(3.0, 4.0));
        assert_eq!(a.len(), 1);
        assert_eq!(a.positions(), vec![Point::new(3.0, 4.0)]);
    }

    #[test]
    fn linear_array_is_centred_and_spaced() {
        let a = AntennaArray::linear(Point::new(0.0, 0.0), 3, 0.06, Vec2::new(1.0, 0.0));
        let p = a.positions();
        assert_eq!(p.len(), 3);
        assert!(p[0].distance(Point::new(-0.06, 0.0)) < 1e-12);
        assert!(p[1].distance(Point::new(0.0, 0.0)) < 1e-12);
        assert!(p[2].distance(Point::new(0.06, 0.0)) < 1e-12);
        // Mean of elements is the center.
        let mean = Point::new(
            p.iter().map(|q| q.x).sum::<f64>() / 3.0,
            p.iter().map(|q| q.y).sum::<f64>() / 3.0,
        );
        assert!(mean.distance(a.center()) < 1e-12);
    }

    #[test]
    fn half_wavelength_spacing_at_2_4ghz() {
        let a = AntennaArray::half_wavelength(Point::ORIGIN, 3, 2.437e9);
        let p = a.positions();
        let spacing = p[0].distance(p[1]);
        assert!((spacing - 0.0615).abs() < 0.001, "spacing {spacing}");
    }

    #[test]
    fn orientation_is_normalized() {
        let a = AntennaArray::linear(Point::ORIGIN, 2, 1.0, Vec2::new(0.0, 5.0));
        let p = a.positions();
        assert!((p[1].y - p[0].y - 1.0).abs() < 1e-12);
        assert!((p[1].x - p[0].x).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn rejects_empty_array() {
        let _ = AntennaArray::linear(Point::ORIGIN, 0, 0.1, Vec2::new(1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "orientation")]
    fn rejects_zero_orientation() {
        let _ = AntennaArray::linear(Point::ORIGIN, 2, 0.1, Vec2::ZERO);
    }
}
