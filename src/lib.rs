//! **nomloc** — calibration-free indoor localization with nomadic access
//! points.
//!
//! This is the umbrella crate of the NomLoc workspace, a from-scratch Rust
//! reproduction of *"NomLoc: Calibration-free Indoor Localization With
//! Nomadic Access Points"* (Xiao et al., IEEE ICDCS 2014). It re-exports
//! the member crates under stable paths:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `nomloc-core` | PDP proximity, SP estimation, venues, campaigns |
//! | [`geometry`] | `nomloc-geometry` | points, polygons, half-planes, convex decomposition |
//! | [`dsp`] | `nomloc-dsp` | FFT, power delay profiles, statistics |
//! | [`rfsim`] | `nomloc-rfsim` | indoor multipath + 802.11n CSI simulator |
//! | [`mobility`] | `nomloc-mobility` | Markov-chain walks, position-error model |
//! | [`lp`] | `nomloc-lp` | simplex, constraint relaxation, region centers |
//! | [`baselines`] | `nomloc-baselines` | RSS trilateration / centroid / fingerprinting |
//!
//! # Quickstart
//!
//! ```
//! use nomloc::core::experiment::{Campaign, Deployment};
//! use nomloc::core::scenario::Venue;
//!
//! // Reproduce a miniature Fig. 9(a): static vs nomadic in the Lab.
//! let static_result = Campaign::new(Venue::lab(), Deployment::Static)
//!     .packets_per_site(15)
//!     .trials_per_site(1)
//!     .seed(1)
//!     .run();
//! let nomadic_result = Campaign::new(Venue::lab(), Deployment::nomadic(6))
//!     .packets_per_site(15)
//!     .trials_per_site(1)
//!     .seed(1)
//!     .run();
//! assert!(static_result.mean_error().is_finite());
//! assert!(nomadic_result.mean_error().is_finite());
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the paper-figure reproductions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nomloc_baselines as baselines;
pub use nomloc_core as core;
pub use nomloc_dsp as dsp;
pub use nomloc_geometry as geometry;
pub use nomloc_lp as lp;
pub use nomloc_mobility as mobility;
pub use nomloc_rfsim as rfsim;
