#!/usr/bin/env bash
# Vectorization sanity check for the batched SoA FFT kernel.
#
# Emits release assembly for nomloc-dsp with the host CPU's full feature
# set and verifies that the batched-kernel code actually contains packed
# double-precision multiplies / FMAs (`vmulpd` / `vfmadd*pd` on x86,
# `fmla v*.2d` on aarch64). The lockstep lane loops are written so the
# compiler autovectorizes them; this script catches a silent fallback to
# scalar code (e.g. after a refactor perturbs the loop shape).
#
# Advisory: prints a warning and exits 0 when no packed ops are found —
# codegen varies across compiler versions and build hosts, so this is a
# tripwire, not a CI gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> emitting release asm for nomloc-dsp (-C target-cpu=native)"
RUSTFLAGS="-C target-cpu=native" \
  cargo rustc --release --offline -p nomloc-dsp -- --emit asm >/dev/null 2>&1

asm="$(ls -t target/release/deps/nomloc_dsp-*.s 2>/dev/null | head -1)"
if [[ -z "$asm" ]]; then
  echo "warning: no emitted asm found under target/release/deps" >&2
  exit 0
fi
echo "    inspecting $asm"

# Pull out only the functions whose mangled names mention the batch
# module, then look for packed f64 arithmetic inside them.
packed="$(awk '
  /^[A-Za-z_][A-Za-z0-9_.$]*:/ {
    infn = ($0 ~ /[Bb]atch/)
  }
  infn && /(vfmadd[0-9]*pd|vmulpd|fmla[[:space:]]+v[0-9]+\.2d)/ { count++ }
  END { print count + 0 }
' "$asm")"

if [[ "$packed" -gt 0 ]]; then
  echo "OK: $packed packed f64 multiply/FMA instruction(s) in batched-kernel code"
else
  echo "warning: no packed f64 multiplies found in batched-kernel code —" >&2
  echo "         the lane loops may have fallen back to scalar codegen" >&2
fi
exit 0
