#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Everything runs --offline; the workspace has no network dependencies
# (rand/proptest/criterion are vendored path crates under shims/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> benches compile: cargo bench --no-run"
cargo bench --workspace --no-run --offline

echo "==> nomloc-net and nomloc-faults build"
cargo build --offline -p nomloc-net -p nomloc-faults

echo "==> tier-1 gate: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> full workspace tests"
cargo test -q --workspace --offline

echo "==> loopback serving smoke test (daemon + loadgen over 127.0.0.1)"
cargo test -q --offline --test net_loopback

echo "==> chaos smoke: fault-injected serving contract over 127.0.0.1"
echo "    (event-loop socket backend — the default)"
cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  chaos --seed 7 --requests 200 --socket-backend event-loop
echo "    (thread-per-connection fallback backend, same seed)"
cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  chaos --seed 7 --requests 200 --socket-backend threaded

echo "==> session chaos smoke: 1% faults over 3 interleaved sessions"
# The per-session replay inside the verifier is a cross-wire detector:
# any reply carrying another session's track fails the run.
sc_out="$(cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  chaos --seed 11 --requests 300 --rate 0.01 --sessions 3)"
echo "$sc_out" | grep -E "sessions:|verdict"
if ! echo "$sc_out" | grep -q "replay-verified"; then
  echo "error: sessioned chaos run did not replay-verify" >&2
  exit 1
fi

echo "==> event-loop loopback smoke: loadgen with an idle crowd"
cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  loadgen --requests 200 --socket-backend event-loop --idle-connections 500

echo "==> multi-venue smoke: 8 venues over the admin plane, zipf traffic"
mv_out="$(cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  loadgen --requests 400 --packets 2 --venues 8 --zipf 1.0)"
echo "$mv_out" | grep -E "venue batching|zipf"
# The venue-sharded batcher must never form a mixed-venue micro-batch.
if ! echo "$mv_out" | grep -q ", 0 mixed"; then
  echo "error: venue-sharded batcher produced mixed batches" >&2
  exit 1
fi
# Every request is attributed to exactly one venue: the per-venue request
# counters in the drain-time health must sum to the driven total.
mv_total="$(echo "$mv_out" | sed -n 's/^ *venue [0-9][0-9]* *req \([0-9]*\).*/\1/p' |
  awk '{s+=$1} END {print s+0}')"
if [[ "$mv_total" != "400" ]]; then
  echo "error: per-venue request counters sum to ${mv_total}, expected 400" >&2
  exit 1
fi

echo "==> contended-dispatch smoke: 8 closed-loop workers over 100 zipf venues"
cd_out="$(cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  loadgen --requests 400 --packets 2 --venues 100 --zipf 1.0 --concurrency 8)"
echo "$cd_out" | grep -E "closed-loop|venue batching"
if ! echo "$cd_out" | grep -q "closed-loop: 8 workers"; then
  echo "error: closed-loop run did not report its worker pool" >&2
  exit 1
fi
# The sharded plane must keep every micro-batch venue-homogeneous even
# under contended dispatch across 101 live venues.
if ! echo "$cd_out" | grep -q ", 0 mixed"; then
  echo "error: contended dispatch produced mixed batches" >&2
  exit 1
fi
# Every driven request lands on exactly one venue counter.
cd_total="$(echo "$cd_out" | sed -n 's/^ *venue [0-9][0-9]* *req \([0-9]*\).*/\1/p' |
  awk '{s+=$1} END {print s+0}')"
if [[ "$cd_total" != "400" ]]; then
  echo "error: per-venue request counters sum to ${cd_total}, expected 400" >&2
  exit 1
fi

echo "==> serving benchmark (quick): BENCH_serving.json present and well-formed"
# Capture the committed PDP stage cost *before* the quick run overwrites
# the file — it is the baseline for the regression guard below.
committed_pdp="$(git show HEAD:BENCH_serving.json 2>/dev/null |
  sed -n 's/.*"pdp_ns_per_request"[[:space:]]*:[[:space:]]*\([0-9.]*\).*/\1/p' | head -1)"
NOMLOC_BENCH_QUICK=1 cargo run --release -p nomloc-bench --bin bench_serving_json --offline
if [[ ! -s BENCH_serving.json ]]; then
  echo "error: BENCH_serving.json missing or empty" >&2
  exit 1
fi
for key in stages fft pdp_64 pdp_batched encode end_to_end speedup decode_ns_per_request soak venues dispatch sessions; do
  if ! grep -q "\"$key\"" BENCH_serving.json; then
    echo "error: BENCH_serving.json malformed — missing key \"$key\"" >&2
    exit 1
  fi
done

echo "==> PDP stage regression guard (quick run vs committed BENCH_serving.json)"
new_pdp="$(sed -n 's/.*"pdp_ns_per_request"[[:space:]]*:[[:space:]]*\([0-9.]*\).*/\1/p' \
  BENCH_serving.json | head -1)"
if [[ -z "$committed_pdp" ]]; then
  echo "    no committed baseline (new file?) — skipping"
elif [[ -z "$new_pdp" ]]; then
  echo "error: pdp_ns_per_request missing from fresh BENCH_serving.json" >&2
  exit 1
else
  # Fail on a >25% regression; quick-mode runs are noisy, so the margin is
  # deliberately generous — a real hot-path regression blows well past it.
  awk -v new="$new_pdp" -v old="$committed_pdp" 'BEGIN {
    limit = old * 1.25
    printf "    pdp_ns_per_request: %.1f (committed %.1f, limit %.1f)\n", new, old, limit
    exit (new > limit) ? 1 : 0
  }' || {
    echo "error: PDP stage regressed >25% vs committed baseline" >&2
    exit 1
  }
fi

echo "==> dispatch regression guard (quick run vs committed BENCH_serving.json)"
# The 100-venue entry is the last element of the "dispatch" array: the
# contended regime where the sharded plane must beat the single-queue
# oracle. Two gates: absolute (sharded must stay ahead of the oracle by a
# real margin) and relative (sharded ns/request must not regress vs the
# committed baseline, same discipline as the PDP stage guard).
committed_disp="$(git show HEAD:BENCH_serving.json 2>/dev/null |
  sed -n 's/.*"sharded_ns_per_request"[[:space:]]*:[[:space:]]*\([0-9.]*\).*/\1/p' |
  tail -1)"
new_disp="$(sed -n 's/.*"sharded_ns_per_request"[[:space:]]*:[[:space:]]*\([0-9.]*\).*/\1/p' \
  BENCH_serving.json | tail -1)"
new_improvement="$(sed -n 's/.*"improvement_pct"[[:space:]]*:[[:space:]]*\(-\{0,1\}[0-9.]*\).*/\1/p' \
  BENCH_serving.json | tail -1)"
if [[ -z "$new_disp" || -z "$new_improvement" ]]; then
  echo "error: dispatch section missing from fresh BENCH_serving.json" >&2
  exit 1
fi
awk -v imp="$new_improvement" 'BEGIN {
  printf "    dispatch improvement at 100 venues: %+.1f%% (floor +10%%)\n", imp
  exit (imp < 10.0) ? 1 : 0
}' || {
  echo "error: sharded dispatch no longer beats the single-queue oracle by >=10%" >&2
  exit 1
}
if [[ -z "$committed_disp" ]]; then
  echo "    no committed dispatch baseline (new section?) — skipping relative gate"
else
  # Wider margin than the PDP stage guard: the contended-dispatch regime
  # (deep backlog, 8 connections racing 2 batchers) is inherently noisier
  # per quick-mode run than an in-process microbench. The +10% improvement
  # floor above is the load-bearing gate; this one only catches gross
  # regressions of the sharded plane itself.
  awk -v new="$new_disp" -v old="$committed_disp" 'BEGIN {
    limit = old * 1.5
    printf "    sharded_ns_per_request: %.1f (committed %.1f, limit %.1f)\n", new, old, limit
    exit (new > limit) ? 1 : 0
  }' || {
    echo "error: sharded dispatch regressed >50% vs committed baseline" >&2
    exit 1
  }
fi

echo "==> idle-crowd p99 guard (soak idle_p99_ratio)"
# Satellite of the dispatch PR: with bounded accept draining and O(1)
# dirty-marking, an idle herd may no longer multiply active p99 by more
# than this. Before the fix the ratio ran >3x and unbounded with crowd
# size; the gate holds the line well under the old failure mode while
# absorbing quick-mode noise.
idle_ratio="$(sed -n 's/.*"idle_p99_ratio"[[:space:]]*:[[:space:]]*\([0-9.]*\).*/\1/p' \
  BENCH_serving.json | head -1)"
if [[ -z "$idle_ratio" ]]; then
  echo "    soak skipped (no nomloc binary) — skipping ratio gate"
else
  awk -v r="$idle_ratio" 'BEGIN {
    printf "    idle_p99_ratio: %.2fx (limit 4.50x)\n", r
    exit (r > 4.5) ? 1 : 0
  }' || {
    echo "error: idle crowd inflates active p99 beyond 4.5x" >&2
    exit 1
  }
fi

echo "All checks passed."
