#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Everything runs --offline; the workspace has no network dependencies
# (rand/proptest/criterion are vendored path crates under shims/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> benches compile: cargo bench --no-run"
cargo bench --workspace --no-run --offline

echo "==> nomloc-net and nomloc-faults build"
cargo build --offline -p nomloc-net -p nomloc-faults

echo "==> tier-1 gate: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> full workspace tests"
cargo test -q --workspace --offline

echo "==> loopback serving smoke test (daemon + loadgen over 127.0.0.1)"
cargo test -q --offline --test net_loopback

echo "==> chaos smoke: fault-injected serving contract over 127.0.0.1"
echo "    (event-loop socket backend — the default)"
cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  chaos --seed 7 --requests 200 --socket-backend event-loop
echo "    (thread-per-connection fallback backend, same seed)"
cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  chaos --seed 7 --requests 200 --socket-backend threaded

echo "==> event-loop loopback smoke: loadgen with an idle crowd"
cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  loadgen --requests 200 --socket-backend event-loop --idle-connections 500

echo "==> serving benchmark (quick): BENCH_serving.json present and well-formed"
NOMLOC_BENCH_QUICK=1 cargo run --release -p nomloc-bench --bin bench_serving_json --offline
if [[ ! -s BENCH_serving.json ]]; then
  echo "error: BENCH_serving.json missing or empty" >&2
  exit 1
fi
for key in stages fft pdp_64 encode end_to_end speedup decode_ns_per_request soak; do
  if ! grep -q "\"$key\"" BENCH_serving.json; then
    echo "error: BENCH_serving.json malformed — missing key \"$key\"" >&2
    exit 1
  fi
done

echo "All checks passed."
