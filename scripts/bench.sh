#!/usr/bin/env bash
# Quick benchmark pass: runs the LP-scaling and serving-throughput benches
# in quick mode (NOMLOC_BENCH_QUICK clamps the criterion shim's sampling
# budget and shrinks the paired min-of-rounds loops), then regenerates the
# machine-readable BENCH_lp.json via the bench_json binary.
#
# Usage: scripts/bench.sh [--full]
#   --full   drop the quick clamp and run the complete sampling budget
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--full" ]]; then
  unset NOMLOC_BENCH_QUICK || true
else
  export NOMLOC_BENCH_QUICK=1
fi

echo "==> cargo bench lp_scaling${NOMLOC_BENCH_QUICK:+ (quick)}"
cargo bench -p nomloc-bench --bench lp_scaling --offline

echo "==> cargo bench serving_throughput${NOMLOC_BENCH_QUICK:+ (quick)}"
cargo bench -p nomloc-bench --bench serving_throughput --offline

echo "==> bench_json -> BENCH_lp.json"
cargo run --release -p nomloc-bench --bin bench_json --offline

echo "==> loadgen quick throughput (loopback daemon, 4 connections)"
cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  loadgen --requests 1000 --packets 2 --connections 4

echo "Benchmarks done."
