#!/usr/bin/env bash
# Quick benchmark pass: runs the LP-scaling and serving-throughput benches
# in quick mode (NOMLOC_BENCH_QUICK clamps the criterion shim's sampling
# budget and shrinks the paired min-of-rounds loops), then regenerates the
# machine-readable BENCH_lp.json via the bench_json binary.
#
# Usage: scripts/bench.sh [--full]
#   --full   drop the quick clamp and run the complete sampling budget
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--full" ]]; then
  unset NOMLOC_BENCH_QUICK || true
else
  export NOMLOC_BENCH_QUICK=1
fi

echo "==> cargo bench lp_scaling${NOMLOC_BENCH_QUICK:+ (quick)}"
cargo bench -p nomloc-bench --bench lp_scaling --offline

echo "==> cargo bench serving_throughput${NOMLOC_BENCH_QUICK:+ (quick)}"
cargo bench -p nomloc-bench --bench serving_throughput --offline

echo "==> bench_json -> BENCH_lp.json"
cargo run --release -p nomloc-bench --bin bench_json --offline

echo "==> bench_serving_json -> BENCH_serving.json"
cargo run --release -p nomloc-bench --bin bench_serving_json --offline
fft_speedup=$(sed -n 's/.*"fft": {[^}]*"speedup": \([0-9.]*\).*/\1/p' BENCH_serving.json)
echo "planned vs naive FFT speedup: ${fft_speedup}x (256-point kernel)"

# Multi-venue registry overhead: per-request cost with 1 vs 100 live
# venues (identical geometry, so the delta is registry + venue-sharding).
venue_one=$(grep -o '"live_venues": 1, "requests": [0-9]*, "ns_per_request": [0-9.]*' \
  BENCH_serving.json | head -1 | sed 's/.*: //')
venue_hundred=$(grep -o '"live_venues": 100, "requests": [0-9]*, "ns_per_request": [0-9.]*' \
  BENCH_serving.json | head -1 | sed 's/.*: //')
if [[ -n "$venue_one" && -n "$venue_hundred" ]]; then
  awk -v one="$venue_one" -v hundred="$venue_hundred" 'BEGIN {
    printf "venue scale: 1 venue %.0f ns/req, 100 venues %.0f ns/req (%+.1f%%)\n",
      one, hundred, (hundred - one) / one * 100
  }'
else
  echo "venue scale: counts missing from BENCH_serving.json" >&2
  exit 1
fi

echo "==> loadgen quick throughput (loopback daemon, 4 connections)"
cargo run --release -p nomloc-cli --bin nomloc --offline -- \
  loadgen --requests 1000 --packets 2 --connections 4

# Fault-injection overhead: time the chaos driver (sequential, loopback)
# at a 0 % and a 1 % per-class fault rate, same seed and workload, so the
# cost of the degradation ladder + retry machinery stays visible.
echo "==> chaos throughput: 0 % vs 1 % per-class fault rate"
chaos_reqs=400
for rate in 0.0 0.01; do
  start_ns=$(date +%s%N)
  cargo run --release -p nomloc-cli --bin nomloc --offline -- \
    chaos --seed 7 --requests "$chaos_reqs" --rate "$rate" >/dev/null
  elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
  echo "  rate $rate: $chaos_reqs requests in ${elapsed_ms} ms" \
       "($(( chaos_reqs * 1000 / (elapsed_ms > 0 ? elapsed_ms : 1) )) req/s incl. daemon spawn + verify)"
done

echo "Benchmarks done."
