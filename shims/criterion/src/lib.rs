//! Offline drop-in replacement for the subset of `criterion` 0.5 that the
//! nomloc workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency under the real crate name. It
//! keeps criterion's bench-authoring surface — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `BenchmarkGroup`
//! configuration, `Bencher::iter`, `BenchmarkId` — while replacing the
//! statistics engine with a simple wall-clock sampler:
//!
//! * `Bencher::iter` warms up for the configured warm-up time, sizes the
//!   per-sample iteration count to fit the measurement budget, then takes
//!   `sample_size` samples and reports min / median / max ns-per-iteration;
//! * a substring filter passed on the command line (as `cargo bench -- foo`
//!   does) restricts which benchmark IDs run; `--bench` and other harness
//!   flags are ignored.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        let function_name = function_name.into();
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for groups benching one function over inputs.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`-style methods: either a `&str` or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct SamplingConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl SamplingConfig {
    /// Clamps the sampling budget for quick smoke runs: `quick` (driven by
    /// the `NOMLOC_BENCH_QUICK` environment variable) caps samples at 10,
    /// measurement at 200 ms and warm-up at 50 ms per benchmark, so a full
    /// bench binary finishes in seconds instead of minutes.
    fn clamped_for_quick(self, quick: bool) -> Self {
        if !quick {
            return self;
        }
        SamplingConfig {
            sample_size: self.sample_size.min(10),
            measurement_time: self.measurement_time.min(Duration::from_millis(200)),
            warm_up_time: self.warm_up_time.min(Duration::from_millis(50)),
        }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    config: SamplingConfig,
    /// Per-iteration nanoseconds: (min, median, max), filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost so samples can be
        // sized to fit the measurement budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let samples = self.config.sample_size.max(5);
        let budget = self.config.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).floor() as u64).clamp(1, 1 << 24);

        let mut ns_per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            ns_per_iter.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        ns_per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = ns_per_iter[0];
        let max = ns_per_iter[ns_per_iter.len() - 1];
        let median = ns_per_iter[ns_per_iter.len() / 2];
        self.result = Some((min, median, max));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(id: &str, filter: Option<&str>, config: SamplingConfig, f: impl FnOnce(&mut Bencher)) {
    if let Some(needle) = filter {
        if !id.contains(needle) {
            return;
        }
    }
    let mut bencher = Bencher {
        config: config.clamped_for_quick(std::env::var_os("NOMLOC_BENCH_QUICK").is_some()),
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((min, median, max)) => println!(
            "{id:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        ),
        None => println!("{id:<50} (no measurement taken)"),
    }
}

/// A named set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    config: SamplingConfig,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut f = f;
        run_one(&full, self.criterion.filter.as_deref(), self.config, |b| {
            f(b)
        });
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut f = f;
        run_one(&full, self.criterion.filter.as_deref(), self.config, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` (and possibly harness flags); the
        // first non-flag argument is treated as a substring filter, matching
        // `cargo bench -- <filter>` usage.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        Criterion { filter }
    }
}

impl Criterion {
    /// No-op in the shim; real criterion re-reads CLI flags here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: SamplingConfig::default(),
        }
    }

    /// Runs one stand-alone benchmark with default sampling settings.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let full = id.into_id();
        let mut f = f;
        run_one(
            &full,
            self.filter.as_deref(),
            SamplingConfig::default(),
            |b| f(b),
        );
    }
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let config = SamplingConfig {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
        };
        let mut b = Bencher {
            config,
            result: None,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        let (min, median, max) = b.result.expect("iter records a result");
        assert!(min > 0.0 && min <= median && median <= max);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("lab", 42).into_id(), "lab/42");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }

    #[test]
    fn quick_clamp_caps_the_budget() {
        let full = SamplingConfig::default();
        let quick = full.clamped_for_quick(true);
        assert_eq!(quick.sample_size, 10);
        assert_eq!(quick.measurement_time, Duration::from_millis(200));
        assert_eq!(quick.warm_up_time, Duration::from_millis(50));
        // Budgets already below the cap are left alone.
        let tiny = SamplingConfig {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(5),
        };
        let clamped = tiny.clamped_for_quick(true);
        assert_eq!(clamped.sample_size, 3);
        assert_eq!(clamped.measurement_time, Duration::from_millis(10));
        // And `quick = false` is the identity.
        let same = full.clamped_for_quick(false);
        assert_eq!(same.sample_size, full.sample_size);
        assert_eq!(same.measurement_time, full.measurement_time);
    }

    #[test]
    fn units_format() {
        assert_eq!(format_ns(12.3), "12.30 ns");
        assert_eq!(format_ns(12_300.0), "12.30 µs");
        assert_eq!(format_ns(12_300_000.0), "12.30 ms");
    }
}
