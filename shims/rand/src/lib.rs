//! Offline drop-in replacement for the subset of `rand` 0.8 that the
//! nomloc workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency under the real crate name. It
//! provides:
//!
//! * [`RngCore`] / [`Rng`] with `gen` and `gen_range` over the float and
//!   integer ranges the codebase draws from;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], implemented as xoshiro256++ seeded through a
//!   splitmix64 expander.
//!
//! The streams differ numerically from upstream `rand`'s ChaCha12-based
//! `StdRng`, which is fine for this workspace: every consumer relies on
//! *determinism under a fixed seed* and on statistical quality, never on
//! exact upstream values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the shim's stand-in
/// for `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "gen_range: empty range");
        // Scale by the next-up of the width so `b` itself is reachable.
        let u = f64::sample(rng);
        (a + u * (b - a)).min(b)
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded draw (Lemire); the shim skips the
                // rejection step — bias is < 2⁻⁶⁴ · span, irrelevant here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                let span = (b as i128 - a as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (a as i128 + hi) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the RNG from OS-independent process entropy. The shim has no
    /// OS entropy source; it mixes the current time instead.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED_5EED_5EED_5EED);
        Self::seed_from_u64(nanos)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through a splitmix64 expander.
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A convenience thread-local-free RNG for quick use (shim: time-seeded).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn float_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x));
            let y = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
        // Degenerate inclusive range is allowed.
        assert_eq!(rng.gen_range(4.0..=4.0), 4.0);
    }

    #[test]
    fn int_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let k = rng.gen_range(0usize..5);
            seen[k] = true;
            let j = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&j));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
