//! Offline drop-in replacement for the subset of `proptest` 1.x that the
//! nomloc workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency under the real crate name. It
//! keeps proptest's *shape* — `proptest!`, `prop_assert*!`, `prop_assume!`,
//! `Strategy` with `prop_map`/`prop_filter`, `prop::collection::vec`,
//! `ProptestConfig::with_cases` — while replacing the engine with a plain
//! seeded-random case loop:
//!
//! * cases are generated from a per-test deterministic seed (FNV-1a of the
//!   fully-qualified test name mixed with the attempt index), so failures
//!   reproduce across runs;
//! * rejection (`prop_assume!` or `prop_filter`) discards the case and
//!   draws a fresh one, up to a global rejection budget;
//! * there is **no shrinking** — a failing case reports the values it can
//!   (via the assertion message) and the seed.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

// The `proptest!` macro needs `rand` from the consumer's crate root; test
// crates only depend on `proptest`, so route the path through `$crate`.
#[doc(hidden)]
pub use rand as __rand;

/// A generator of random values of type [`Strategy::Value`].
///
/// `generate` returns `None` when the drawn value is rejected (e.g. by a
/// [`Strategy::prop_filter`] predicate); the runner then retries with a
/// fresh seed.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value, or `None` on rejection.
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values for which `pred` returns `false`.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _reason: reason,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> Option<f64> {
        Some(rng.gen_range(self.clone()))
    }
}

macro_rules! int_strategy_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

int_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy_impl {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}

tuple_strategy_impl!(A.0);
tuple_strategy_impl!(A.0, B.1);
tuple_strategy_impl!(A.0, B.1, C.2);
tuple_strategy_impl!(A.0, B.1, C.2, D.3);
tuple_strategy_impl!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy_impl!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy_impl!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy_impl!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with `len ∈ size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Runner configuration and failure plumbing.
pub mod test_runner {
    /// How a single generated case ended, when not successful.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected (`prop_assume!` / filter): retry.
        Reject,
        /// An assertion failed with this message: abort the test.
        Fail(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject => write!(f, "rejected"),
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config identical to the default but running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic base seed from a test's fully-qualified name (FNV-1a).
    pub fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The `prop::` path alias used by `proptest::prelude::*` consumers
/// (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        // Bind first: `!` on a raw comparison trips clippy's
        // neg_cmp_op_on_partial_ord at every float-comparison call site.
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    }};
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Rejects the current case unless `cond` holds; a fresh case is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::name_seed(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            // Rejection budget: filters/assumes in this workspace reject a
            // small fraction of draws, so this bound is never reached in
            // practice; it guards against a pathological strategy.
            let max_attempts = config.cases as u64 * 512 + 4096;
            while accepted < config.cases {
                assert!(
                    attempt < max_attempts,
                    "proptest shim: {} exceeded the rejection budget ({} attempts for {} cases)",
                    stringify!($name), attempt, config.cases,
                );
                let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                attempt += 1;
                let mut rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        seed,
                    );
                let ($($arg,)+) = match $crate::Strategy::generate(&strategy, &mut rng) {
                    ::std::option::Option::Some(v) => v,
                    ::std::option::Option::None => continue,
                };
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed for {} (attempt {}, seed {:#x}):\n{}",
                            stringify!($name), attempt - 1, seed, msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_body!(($cfg); $($rest)*);
    };
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(200))]
///     #[test]
///     fn it_holds(x in 0.0..1.0f64, v in prop::collection::vec(0u64..10, 1..5)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_vecs(
            x in -2.0..3.0f64,
            n in 1u64..100,
            v in prop::collection::vec(0.0..1.0f64, 2..6),
        ) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..100).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!((0.0..1.0).contains(e));
            }
        }

        #[test]
        fn map_filter_assume(
            p in (0.0..1.0f64, 0.0..1.0f64)
                .prop_filter("nonzero", |(a, b)| a + b > 1e-3)
                .prop_map(|(a, b)| a + b),
        ) {
            prop_assume!(p < 1.9);
            prop_assert!(p > 1e-3);
            prop_assert_ne!(p, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_seed() {
        proptest! {
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_across_runs() {
        fn collect() -> Vec<u64> {
            let strat = 0u64..1_000_000;
            let base = crate::test_runner::name_seed("det");
            (0..16u64)
                .map(|i| {
                    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                        base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    crate::Strategy::generate(&strat, &mut rng).unwrap()
                })
                .collect()
        }
        assert_eq!(collect(), collect());
    }
}
