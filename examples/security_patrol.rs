//! Security patrol: the paper's public-safety motivation.
//!
//! "Secure inspectors need to monitor every place of the region …
//! the spatial localizability variance will result in miss detection at a
//! blind area where the suspect can slip in." Here the guard's intercom is
//! the nomadic AP patrolling the L-shaped lobby on a fixed sweep route;
//! we measure how well each deployment watches every test site (detection
//! = localized within a catch radius) and where the blind spots are.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example security_patrol
//! ```

use nomloc::core::experiment::{Campaign, Deployment, MobilityPattern};
use nomloc::core::scenario::Venue;

/// An intruder is "caught" when the location estimate lands within this
/// distance of the truth.
const CATCH_RADIUS_M: f64 = 3.0;

fn detection_report(label: &str, result: &nomloc::core::experiment::CampaignResult, venue: &Venue) {
    let mean_errors = result.site_mean_errors();
    let caught = mean_errors.iter().filter(|&&e| e <= CATCH_RADIUS_M).count();
    println!(
        "{label}: {caught}/{} sites covered (catch radius {CATCH_RADIUS_M} m), \
         mean error {:.2} m, SLV {:.2} m²",
        venue.n_test_sites(),
        result.mean_error(),
        result.slv()
    );
    for (site, err) in venue.test_sites.iter().zip(&mean_errors) {
        if *err > CATCH_RADIUS_M {
            println!("    blind spot at {site}: mean error {err:.2} m");
        }
    }
}

fn main() {
    let venue = Venue::lobby();
    println!(
        "patrolling the {} ({:.0} m², {} test sites)…",
        venue.name,
        venue.plan.boundary().area(),
        venue.n_test_sites()
    );
    println!();

    let static_result = Campaign::new(Venue::lobby(), Deployment::Static)
        .packets_per_site(40)
        .trials_per_site(5)
        .seed(99)
        .run();
    detection_report("static deployment ", &static_result, &venue);
    println!();

    // The guard patrols a deterministic sweep route through the sites.
    let patrol = Deployment::Nomadic {
        steps: 8,
        pattern: MobilityPattern::Sweep,
    };
    let patrol_result = Campaign::new(Venue::lobby(), patrol)
        .packets_per_site(40)
        .trials_per_site(5)
        .seed(99)
        .run();
    detection_report("guard on patrol   ", &patrol_result, &venue);
    println!();

    let blind_static = static_result
        .site_mean_errors()
        .iter()
        .filter(|&&e| e > CATCH_RADIUS_M)
        .count();
    let blind_patrol = patrol_result
        .site_mean_errors()
        .iter()
        .filter(|&&e| e > CATCH_RADIUS_M)
        .count();
    println!(
        "blind spots: {blind_static} (static) → {blind_patrol} (patrol); \
         the patrolling intercom closes the gaps a suspect could slip through."
    );
}
