//! Tracking a moving person through the Lab with NomLoc estimates and the
//! tracking filters.
//!
//! A shopper walks a waypoint route; every second the system produces one
//! NomLoc estimate (static APs + the nomadic AP's current site), which is
//! fed to raw, exponential, and alpha-beta trackers with a walking-speed
//! gate. Prints per-filter mean tracking error.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example tracking
//! ```

use nomloc::core::proximity::ApSite;
use nomloc::core::scenario::Venue;
use nomloc::core::server::{CsiReport, LocalizationServer};
use nomloc::core::tracking::{track_error, Smoothing, Tracker};
use nomloc::geometry::Point;
use nomloc::rfsim::{Environment, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Walking route through the Lab (waypoints).
const ROUTE: [(f64, f64); 5] = [(1.5, 1.5), (5.2, 1.5), (6.9, 3.5), (6.0, 6.0), (10.4, 6.6)];

/// Interpolates the route into per-second ground-truth positions.
fn ground_truth(speed: f64) -> Vec<Point> {
    let mut out = Vec::new();
    for w in ROUTE.windows(2) {
        let a = Point::new(w[0].0, w[0].1);
        let b = Point::new(w[1].0, w[1].1);
        let steps = (a.distance(b) / speed).ceil() as usize;
        for s in 0..steps {
            out.push(a.lerp(b, s as f64 / steps as f64));
        }
    }
    out.push(Point::new(ROUTE[4].0, ROUTE[4].1));
    out
}

fn main() {
    let venue = Venue::lab();
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let server = LocalizationServer::new(venue.plan.boundary().clone());
    let grid = SubcarrierGrid::intel5300();
    let mut rng = StdRng::seed_from_u64(31);

    let truth = ground_truth(0.5);
    println!(
        "tracking a {}-step walk through the {} (0.5 m/s, 1 Hz localization)…",
        truth.len(),
        venue.name
    );

    // One NomLoc estimate per second. The nomadic AP cycles its sites.
    let nomadic_sites = venue.nomadic_site_set();
    let mut raw_estimates = Vec::with_capacity(truth.len());
    for (t, &pos) in truth.iter().enumerate() {
        let mut reports: Vec<CsiReport> = venue
            .static_deployment()
            .iter()
            .enumerate()
            .map(|(i, &ap)| CsiReport {
                site: ApSite::fixed(i + 1, ap),
                burst: env.sample_csi_burst(pos, ap, &grid, 20, &mut rng),
            })
            .collect();
        // The nomadic AP measures from wherever it currently stands.
        let site = nomadic_sites[t % nomadic_sites.len()];
        reports.push(CsiReport {
            site: ApSite::nomadic(1, 1, site),
            burst: env.sample_csi_burst(pos, site, &grid, 20, &mut rng),
        });
        let est = server.process(&reports).expect("estimate");
        raw_estimates.push(est.position);
    }

    let mut results = Vec::new();
    for (label, smoothing) in [
        ("raw estimates", Smoothing::Raw),
        ("exponential α=0.5", Smoothing::Exponential { alpha: 0.5 }),
        (
            "alpha-beta (gated 2 m/s)",
            Smoothing::AlphaBeta {
                alpha: 0.7,
                beta: 0.3,
            },
        ),
    ] {
        let mut tracker = Tracker::new(smoothing);
        if matches!(smoothing, Smoothing::AlphaBeta { .. }) {
            tracker = tracker.with_max_speed(2.0);
        }
        for &e in &raw_estimates {
            tracker.push(e, 1.0);
        }
        let err = track_error(tracker.smooth_history(), &truth).unwrap();
        println!(
            "  {label:<26} mean error {err:.2} m, path length {:.1} m (truth ≈ {:.1} m)",
            tracker.path_length(),
            truth.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>()
        );
        results.push((label, err));
    }

    let raw = results[0].1;
    let best = results
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    println!();
    println!(
        "best filter: {} ({:.2} m vs {:.2} m raw, {:.0} % better)",
        best.0,
        best.1,
        raw,
        100.0 * (1.0 - best.1 / raw)
    );
}
