//! Retail analytics: the paper's indoor location-based advertising
//! motivation.
//!
//! "In a large marketplace, merchants seek for the best locations to
//! advertise their products … But the statistic data can be misleading or
//! even crash profits due to spatial localizability variance." This
//! example builds a marketplace, tracks simulated shoppers under static
//! and nomadic deployments (the nomadic AP is a *shop greeter's
//! smartphone*), aggregates per-zone dwell counts, and shows how the
//! static deployment's blind zones skew the heat map merchants pay for.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example retail_analytics
//! ```

use nomloc::core::proximity::ApSite;
use nomloc::core::scenario::Venue;
use nomloc::core::server::{CsiReport, LocalizationServer};
use nomloc::geometry::Point;
use nomloc::mobility::{patterns, MarkovChain};
use nomloc::rfsim::{Environment, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Zones the marketplace is divided into for the dwell-count heat map.
const ZONES: [(&str, f64, f64, f64, f64); 4] = [
    ("entrance  (x<6,  y<4)", 0.0, 0.0, 6.0, 4.0),
    ("electronics (x≥6, y<4)", 6.0, 0.0, 12.0, 4.0),
    ("fashion   (x<6,  y≥4)", 0.0, 4.0, 6.0, 8.0),
    ("grocery   (x≥6, y≥4)", 6.0, 4.0, 12.0, 8.0),
];

fn zone_of(p: Point) -> usize {
    ZONES
        .iter()
        .position(|&(_, x0, y0, x1, y1)| p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1)
        .unwrap_or(0)
}

fn main() {
    // Reuse the Lab plan as a small marketplace floor.
    let venue = Venue::lab();
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let server = LocalizationServer::new(venue.plan.boundary().clone());
    let grid = SubcarrierGrid::intel5300();
    let mut rng = StdRng::seed_from_u64(22);

    // Shoppers wander among the venue's test sites.
    let shopper_chain = MarkovChain::new(
        venue.test_sites.clone(),
        patterns::uniform(venue.test_sites.len()),
    )
    .expect("uniform pattern is stochastic");

    let n_shoppers = 12;
    let dwell_steps = 16;
    let mut true_counts = [0usize; 4];
    let mut static_counts = [0usize; 4];
    let mut nomadic_counts = [0usize; 4];

    for shopper in 0..n_shoppers {
        let walk = shopper_chain.walk(shopper % venue.test_sites.len(), dwell_steps, &mut rng);
        for &site_idx in &walk {
            let truth = venue.test_sites[site_idx];
            true_counts[zone_of(truth)] += 1;

            // Static deployment measurement.
            let mut reports: Vec<CsiReport> = venue
                .static_deployment()
                .iter()
                .enumerate()
                .map(|(i, &ap)| CsiReport {
                    site: ApSite::fixed(i + 1, ap),
                    burst: env.sample_csi_burst(truth, ap, &grid, 12, &mut rng),
                })
                .collect();
            if let Ok(est) = server.process(&reports) {
                static_counts[zone_of(est.position)] += 1;
            }

            // The greeter (nomadic AP 1) adds measurements from two of the
            // public sites on their rounds.
            for (v, &p) in venue.nomadic_sites.iter().take(2).enumerate() {
                reports.push(CsiReport {
                    site: ApSite::nomadic(1, v + 1, p),
                    burst: env.sample_csi_burst(truth, p, &grid, 12, &mut rng),
                });
            }
            if let Ok(est) = server.process(&reports) {
                nomadic_counts[zone_of(est.position)] += 1;
            }
        }
    }

    let total: usize = true_counts.iter().sum();
    println!("dwell-share heat map over {total} shopper-steps:");
    println!(
        "{:<26} {:>8} {:>8} {:>8}",
        "zone", "truth", "static", "nomadic"
    );
    let mut static_skew = 0.0;
    let mut nomadic_skew = 0.0;
    for z in 0..4 {
        let t = true_counts[z] as f64 / total as f64;
        let s = static_counts[z] as f64 / total as f64;
        let n = nomadic_counts[z] as f64 / total as f64;
        static_skew += (s - t).abs();
        nomadic_skew += (n - t).abs();
        println!(
            "{:<26} {:>7.1}% {:>7.1}% {:>7.1}%",
            ZONES[z].0,
            100.0 * t,
            100.0 * s,
            100.0 * n
        );
    }
    println!();
    println!(
        "total heat-map skew (L1 vs truth): static {:.1} pp, nomadic {:.1} pp",
        100.0 * static_skew,
        100.0 * nomadic_skew
    );
    if nomadic_skew < static_skew {
        println!("→ the greeter's nomadic AP makes the merchants' heat map honest.");
    }
}
