//! Bring your own building: defining a custom venue from scratch and
//! running the full NomLoc pipeline in it.
//!
//! Shows the public API surface a downstream user touches: floor-plan
//! construction with materials, radio configuration, a custom mobility
//! chain for the nomadic AP, and direct use of the localization server.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example custom_venue
//! ```

use nomloc::core::proximity::ApSite;
use nomloc::core::server::{CsiReport, LocalizationServer};
use nomloc::geometry::{Point, Polygon, Segment};
use nomloc::lp::center::CenterMethod;
use nomloc::mobility::{MarkovChain, PositionError};
use nomloc::rfsim::{Environment, FloorPlan, Material, RadioConfig, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- 1. A T-shaped office floor (non-convex, like the paper's lobby).
    let outline = Polygon::new(vec![
        Point::new(0.0, 0.0),
        Point::new(16.0, 0.0),
        Point::new(16.0, 5.0),
        Point::new(11.0, 5.0),
        Point::new(11.0, 11.0),
        Point::new(5.0, 11.0),
        Point::new(5.0, 5.0),
        Point::new(0.0, 5.0),
    ])
    .expect("simple outline");

    let plan = FloorPlan::builder(outline)
        .boundary_material(Material::CONCRETE)
        // A glass meeting-room wall across the corridor.
        .wall(
            Segment::new(Point::new(5.0, 5.0), Point::new(11.0, 5.0)),
            Material::GLASS,
        )
        // A copier and a bookshelf.
        .rect_obstacle(
            Point::new(13.0, 1.0),
            Point::new(14.2, 2.2),
            Material::METAL,
        )
        .rect_obstacle(Point::new(6.0, 8.0), Point::new(9.8, 8.8), Material::WOOD)
        .build();

    // ---- 2. Radio tuned for the venue.
    let radio = RadioConfig {
        tx_power_dbm: 17.0,
        ..RadioConfig::default()
    };
    let env = Environment::new(plan.clone(), radio);

    // ---- 3. Server with the exact analytic-center backend the paper's
    //         CVX implementation used.
    let server =
        LocalizationServer::new(plan.boundary().clone()).with_center_method(CenterMethod::Analytic);

    // ---- 4. Deployment: three wall-mounted APs + one roaming tablet.
    let static_aps = [
        Point::new(1.0, 1.0),
        Point::new(15.0, 1.0),
        Point::new(8.0, 10.2),
    ];
    let tablet_sites = vec![
        Point::new(4.0, 2.5),  // reception
        Point::new(8.0, 2.5),  // corridor mid
        Point::new(12.5, 2.5), // print corner
        Point::new(8.0, 6.5),  // meeting room door
    ];
    let tablet_chain = MarkovChain::new(
        tablet_sites.clone(),
        nomloc::mobility::patterns::corridor(tablet_sites.len()),
    )
    .expect("corridor pattern");
    // The tablet self-reports position within ±1 m.
    let tablet_gps = PositionError::new(1.0);

    // ---- 5. Localize a visitor standing in the meeting-room wing.
    let visitor = Point::new(7.2, 7.5);
    let grid = SubcarrierGrid::intel5300();
    let mut rng = StdRng::seed_from_u64(5);

    let mut reports: Vec<CsiReport> = static_aps
        .iter()
        .enumerate()
        .map(|(i, &ap)| CsiReport {
            site: ApSite::fixed(i + 2, ap),
            burst: env.sample_csi_burst(visitor, ap, &grid, 50, &mut rng),
        })
        .collect();

    let before = server.process(&reports).expect("static estimate");
    println!("visitor truly at {visitor}");
    println!(
        "wall APs only:   {}  (error {:.2} m, feasible region {:.1} m²)",
        before.position,
        before.position.distance(visitor),
        before.region_area
    );

    // The tablet pads down the corridor, reporting (noisy) positions.
    let mut visit = 0;
    let mut seen = vec![false; tablet_sites.len()];
    for idx in tablet_chain.walk(0, 6, &mut rng) {
        if seen[idx] {
            continue;
        }
        seen[idx] = true;
        let true_pos = tablet_sites[idx];
        let reported = tablet_gps.apply(true_pos, &mut rng);
        reports.push(CsiReport {
            site: ApSite::nomadic(1, visit, reported),
            burst: env.sample_csi_burst(visitor, true_pos, &grid, 50, &mut rng),
        });
        visit += 1;
    }

    let after = server.process(&reports).expect("nomadic estimate");
    println!(
        "+ roaming tablet: {}  (error {:.2} m, feasible region {:.1} m², {} constraints)",
        after.position,
        after.position.distance(visitor),
        after.region_area,
        after.n_constraints
    );
    println!(
        "the tablet visited {visit} sites and cut the region by {:.0} %",
        100.0 * (1.0 - after.region_area / before.region_area.max(1e-9))
    );
}
