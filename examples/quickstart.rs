//! Quickstart: localize one object in the paper's Lab venue, with and
//! without the nomadic AP's help.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nomloc::core::experiment::{Campaign, Deployment};
use nomloc::core::proximity::ApSite;
use nomloc::core::scenario::Venue;
use nomloc::core::server::{CsiReport, LocalizationServer};
use nomloc::geometry::Point;
use nomloc::rfsim::{Environment, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- 1. One-shot localization, by hand -------------------------------
    let venue = Venue::lab();
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let server = LocalizationServer::new(venue.plan.boundary().clone());
    let grid = SubcarrierGrid::intel5300();
    let mut rng = StdRng::seed_from_u64(7);

    // The object (a person with a WiFi device) stands here:
    let object = Point::new(6.0, 3.5);

    // Static APs measure the object's probe packets...
    let mut reports: Vec<CsiReport> = venue
        .static_deployment()
        .iter()
        .enumerate()
        .map(|(i, &ap)| CsiReport {
            site: ApSite::fixed(i + 1, ap),
            burst: env.sample_csi_burst(object, ap, &grid, 60, &mut rng),
        })
        .collect();

    let static_estimate = server.process(&reports).expect("static estimate");
    println!("object truly at           {object}");
    println!(
        "static deployment estimate {}  (error {:.2} m, region {:.1} m²)",
        static_estimate.position,
        static_estimate.position.distance(object),
        static_estimate.region_area,
    );

    // ...then the nomadic AP walks to its three public sites and measures
    // from each, shrinking the feasible region.
    for (visit, &site) in venue.nomadic_sites.iter().enumerate() {
        reports.push(CsiReport {
            site: ApSite::nomadic(1, visit + 1, site),
            burst: env.sample_csi_burst(object, site, &grid, 60, &mut rng),
        });
    }
    let nomadic_estimate = server.process(&reports).expect("nomadic estimate");
    println!(
        "nomadic estimate           {}  (error {:.2} m, region {:.1} m²)",
        nomadic_estimate.position,
        nomadic_estimate.position.distance(object),
        nomadic_estimate.region_area,
    );

    // ---- 2. A full campaign over all ten Lab test sites ------------------
    println!();
    println!("campaign over all {} Lab test sites:", venue.n_test_sites());
    for (label, deployment) in [
        ("static ", Deployment::Static),
        ("nomadic", Deployment::nomadic(8)),
    ] {
        let result = Campaign::new(Venue::lab(), deployment)
            .packets_per_site(40)
            .trials_per_site(4)
            .seed(7)
            .run();
        println!(
            "  {label}: mean error {:.2} m, SLV {:.2} m², proximity accuracy {:.0} %",
            result.mean_error(),
            result.slv(),
            100.0 * result.mean_proximity_accuracy(),
        );
    }
}
