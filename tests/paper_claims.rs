//! Trend-level assertions of the paper's claims, at reduced scale.
//!
//! The full-scale reproductions live in `crates/bench/src/bin/repro_*`;
//! these tests pin the *directions* of the headline results so regressions
//! in any crate show up in `cargo test`. Scales are kept small enough for
//! debug-mode test runs.

use nomloc::core::experiment::{Campaign, Deployment};
use nomloc::core::scenario::Venue;

const PACKETS: usize = 20;
const TRIALS: usize = 3;

fn run(
    venue: Venue,
    deployment: Deployment,
    seed: u64,
) -> nomloc::core::experiment::CampaignResult {
    Campaign::new(venue, deployment)
        .packets_per_site(PACKETS)
        .trials_per_site(TRIALS)
        .seed(seed)
        .run()
}

#[test]
fn fig8_nomadic_reduces_slv_in_both_venues() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let st = run(venue_fn(), Deployment::Static, 2014);
        let no = run(venue_fn(), Deployment::nomadic(8), 2014);
        assert!(
            no.slv() < st.slv(),
            "{}: nomadic SLV {} ≥ static {}",
            venue_fn().name,
            no.slv(),
            st.slv()
        );
    }
}

#[test]
fn fig8_static_slv_larger_in_lobby_than_lab() {
    let lab = run(Venue::lab(), Deployment::Static, 2014);
    let lobby = run(Venue::lobby(), Deployment::Static, 2014);
    assert!(
        lobby.slv() > lab.slv(),
        "lobby static SLV {} should exceed lab {}",
        lobby.slv(),
        lab.slv()
    );
}

#[test]
fn fig9_nomadic_beats_static_accuracy() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let st = run(venue_fn(), Deployment::Static, 2014);
        let no = run(venue_fn(), Deployment::nomadic(8), 2014);
        assert!(
            no.mean_error() < st.mean_error(),
            "{}: nomadic {} ≥ static {}",
            venue_fn().name,
            no.mean_error(),
            st.mean_error()
        );
    }
}

#[test]
fn fig9a_lab_reaches_meter_scale_accuracy() {
    let no = run(Venue::lab(), Deployment::nomadic(8), 2014);
    assert!(
        no.mean_error() < 2.5,
        "lab nomadic mean error {} not meter-scale",
        no.mean_error()
    );
}

#[test]
fn fig7_proximity_accuracy_beats_chance_decisively() {
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let r = run(venue_fn(), Deployment::nomadic(8), 2014);
        assert!(
            r.mean_proximity_accuracy() > 0.8,
            "{}: proximity accuracy {}",
            venue_fn().name,
            r.mean_proximity_accuracy()
        );
    }
}

#[test]
fn fig10_robust_to_nomadic_position_error() {
    // ER 0 → 3 m degrades gracefully: less than 1 m of mean-error growth.
    for venue_fn in [Venue::lab as fn() -> Venue, Venue::lobby] {
        let exact = run(venue_fn(), Deployment::nomadic(8), 2014);
        let noisy = Campaign::new(venue_fn(), Deployment::nomadic(8))
            .packets_per_site(PACKETS)
            .trials_per_site(TRIALS)
            .seed(2014)
            .position_error(3.0)
            .run();
        let degradation = noisy.mean_error() - exact.mean_error();
        assert!(
            degradation < 1.0,
            "{}: ER=3 m degraded accuracy by {degradation} m",
            venue_fn().name
        );
    }
}

#[test]
fn downscoping_more_steps_no_worse() {
    // §IV-B-3: longer walks (more distinct measurement sites) should not
    // hurt on average.
    let short = run(Venue::lab(), Deployment::nomadic(1), 2014);
    let long = run(Venue::lab(), Deployment::nomadic(12), 2014);
    assert!(
        long.mean_error() <= short.mean_error() + 0.25,
        "long walk {} much worse than short {}",
        long.mean_error(),
        short.mean_error()
    );
}
