//! Property-based tests for the tracking layer.

use nomloc::core::tracking::{Smoothing, Tracker};
use nomloc::geometry::Point;
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (-50.0..50.0f64, -50.0..50.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    // The speed gate never lets consecutive outputs exceed vmax·dt.
    #[test]
    fn speed_gate_limits_every_step(
        estimates in prop::collection::vec(point(), 2..30),
        vmax in 0.5..5.0f64,
        dt in 0.2..2.0f64,
    ) {
        let mut t = Tracker::new(Smoothing::Raw).with_max_speed(vmax);
        for &e in &estimates {
            t.push(e, dt);
        }
        for w in t.smooth_history().windows(2) {
            prop_assert!(
                w[0].distance(w[1]) <= vmax * dt + 1e-9,
                "step {} exceeds limit {}", w[0].distance(w[1]), vmax * dt
            );
        }
    }

    // Exponential smoothing output always lies on the segment between the
    // previous output and the new (gated) estimate — so it can never
    // overshoot either.
    #[test]
    fn exponential_output_is_convex_combination(
        estimates in prop::collection::vec(point(), 2..30),
        alpha in 0.05..1.0f64,
    ) {
        let mut t = Tracker::new(Smoothing::Exponential { alpha });
        let mut prev: Option<Point> = None;
        for &e in &estimates {
            let out = t.push(e, 1.0);
            if let Some(p) = prev {
                let seg_len = p.distance(e);
                let via = p.distance(out) + out.distance(e);
                prop_assert!(via <= seg_len + 1e-6, "output off the segment");
            }
            prev = Some(out);
        }
    }

    // Raw tracking is the identity on the input stream.
    #[test]
    fn raw_is_identity(estimates in prop::collection::vec(point(), 1..30)) {
        let mut t = Tracker::new(Smoothing::Raw);
        for &e in &estimates {
            t.push(e, 1.0);
        }
        prop_assert_eq!(t.smooth_history(), &estimates[..]);
        prop_assert_eq!(t.raw_history(), &estimates[..]);
    }

    // Path length is invariant under translation of the whole track.
    #[test]
    fn path_length_translation_invariant(
        estimates in prop::collection::vec(point(), 2..20),
        dx in -10.0..10.0f64,
        dy in -10.0..10.0f64,
    ) {
        let mut a = Tracker::new(Smoothing::Exponential { alpha: 0.4 });
        let mut b = Tracker::new(Smoothing::Exponential { alpha: 0.4 });
        for &e in &estimates {
            a.push(e, 1.0);
            b.push(Point::new(e.x + dx, e.y + dy), 1.0);
        }
        prop_assert!((a.path_length() - b.path_length()).abs() < 1e-6);
    }

    // Alpha-beta with stationary input converges to the input point.
    #[test]
    fn alpha_beta_settles_on_stationary_target(p in point()) {
        let mut t = Tracker::new(Smoothing::AlphaBeta { alpha: 0.6, beta: 0.3 });
        let mut last = Point::ORIGIN;
        for _ in 0..60 {
            last = t.push(p, 1.0);
        }
        prop_assert!(last.distance(p) < 1e-3, "settled at {last}, target {p}");
        prop_assert!(t.velocity().norm() < 1e-3);
    }
}
