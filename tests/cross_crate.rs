//! Cross-crate consistency tests: interfaces between the substrates.

use nomloc::core::constraints::{boundary_constraints, virtual_aps};
use nomloc::core::pdp::PdpEstimator;
use nomloc::geometry::{Point, Polygon};
use nomloc::lp::center::polygon_halfplanes;
use nomloc::mobility::{patterns, MarkovChain};
use nomloc::rfsim::{Environment, FloorPlan, RadioConfig, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's mirror-based virtual-AP construction (core) must describe
/// the same region as the direct polygon half-planes (lp).
#[test]
fn vap_constraints_equal_polygon_halfplanes() {
    let shapes = [
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(12.0, 8.0)),
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(3.0, 5.0),
        ])
        .unwrap(),
    ];
    for shape in shapes {
        let mirror_based = boundary_constraints(&shape, shape.centroid());
        let direct = polygon_halfplanes(&shape);
        assert_eq!(mirror_based.len(), direct.len());
        // Same membership decision on a probe grid.
        let (min, max) = shape.bounding_box();
        for i in 0..20 {
            for j in 0..20 {
                let p = Point::new(
                    min.x - 1.0 + (max.x - min.x + 2.0) * i as f64 / 19.0,
                    min.y - 1.0 + (max.y - min.y + 2.0) * j as f64 / 19.0,
                );
                let via_mirror = mirror_based.iter().all(|c| c.halfplane.contains(p));
                let via_edges = direct.iter().all(|h| h.contains(p));
                assert_eq!(via_mirror, via_edges, "disagreement at {p}");
            }
        }
    }
}

/// Virtual APs land outside the region, mirrored across each edge.
#[test]
fn virtual_aps_outside_region() {
    let region = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 6.0));
    let reference = Point::new(4.0, 3.0);
    let vaps = virtual_aps(&region, reference);
    assert_eq!(vaps.len(), 4);
    for vap in vaps {
        assert!(!region.contains(vap), "virtual AP {vap} inside the region");
    }
}

/// rfsim CSI + dsp IFFT: the PDP of a longer link must be weaker across a
/// sweep of distances (monotone on burst medians in an open room).
#[test]
fn pdp_monotone_with_distance_in_open_room() {
    let plan = FloorPlan::builder(Polygon::rectangle(
        Point::new(0.0, 0.0),
        Point::new(40.0, 20.0),
    ))
    .build();
    let env = Environment::new(plan, RadioConfig::default());
    let grid = SubcarrierGrid::intel5300();
    let est = PdpEstimator::new();
    let mut rng = StdRng::seed_from_u64(6);
    let tx = Point::new(2.0, 10.0);
    let mut prev = f64::INFINITY;
    for d in [3.0, 8.0, 16.0, 30.0] {
        let burst = env.sample_csi_burst(tx, Point::new(2.0 + d, 10.0), &grid, 30, &mut rng);
        let pdp = est.pdp_of_burst(&burst).unwrap();
        assert!(
            pdp < prev,
            "PDP at {d} m ({pdp:.3e}) not below previous ({prev:.3e})"
        );
        prev = pdp;
    }
}

/// mobility + core: the sweep pattern visits every site within n steps.
#[test]
fn sweep_pattern_covers_all_sites() {
    let sites: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
    let chain = MarkovChain::new(sites, patterns::sweep(5)).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let walk = chain.walk(0, 4, &mut rng);
    let mut seen = [false; 5];
    for i in walk {
        seen[i] = true;
    }
    assert!(seen.iter().all(|&s| s), "sweep missed a site: {seen:?}");
}

/// rfsim grids and dsp profiles agree on dimensionality end to end.
#[test]
fn grid_sizes_flow_through_pipeline() {
    let plan = FloorPlan::builder(Polygon::rectangle(
        Point::new(0.0, 0.0),
        Point::new(10.0, 10.0),
    ))
    .build();
    let env = Environment::new(plan, RadioConfig::default());
    let est = PdpEstimator::new();
    let mut rng = StdRng::seed_from_u64(9);
    for grid in [
        SubcarrierGrid::intel5300(),
        SubcarrierGrid::full_80211n_20mhz(),
    ] {
        let snap = env.sample_csi(Point::new(1.0, 1.0), Point::new(8.0, 8.0), &grid, &mut rng);
        assert_eq!(snap.h.len(), grid.len());
        let profile = est.delay_profile(&snap);
        assert!(profile.len() >= 256, "padding to at least min_taps");
        assert!(profile.peak().power > 0.0);
    }
}
