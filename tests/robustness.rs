//! Failure-injection and edge-case robustness tests across the stack.

use nomloc::core::experiment::{Campaign, Deployment};
use nomloc::core::proximity::{ApSite, PdpReading};
use nomloc::core::scenario::Venue;
use nomloc::core::server::{CsiReport, LocalizationServer};
use nomloc::dsp::Complex;
use nomloc::geometry::{Point, Polygon};
use nomloc::rfsim::{CsiSnapshot, Environment, FloorPlan, Material, RadioConfig, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn square_server(side: f64) -> LocalizationServer {
    LocalizationServer::new(Polygon::rectangle(
        Point::new(0.0, 0.0),
        Point::new(side, side),
    ))
}

/// A report whose CSI is pure noise at the noise floor: the pipeline must
/// stay finite and keep the estimate in-bounds.
#[test]
fn noise_only_csi_does_not_break_pipeline() {
    let server = square_server(10.0);
    let grid = SubcarrierGrid::intel5300();
    let mut rng = StdRng::seed_from_u64(1);
    // Fabricate a silent environment: TX power so low the signal is
    // orders of magnitude under the estimation noise.
    let plan = FloorPlan::builder(Polygon::rectangle(
        Point::new(0.0, 0.0),
        Point::new(10.0, 10.0),
    ))
    .build();
    let radio = RadioConfig {
        tx_power_dbm: -150.0,
        ..RadioConfig::default()
    };
    let env = Environment::new(plan, radio);
    let aps = [
        Point::new(1.0, 1.0),
        Point::new(9.0, 1.0),
        Point::new(5.0, 9.0),
    ];
    let reports: Vec<CsiReport> = aps
        .iter()
        .enumerate()
        .map(|(i, &ap)| CsiReport {
            site: ApSite::fixed(i + 1, ap),
            burst: env.sample_csi_burst(Point::new(5.0, 5.0), ap, &grid, 10, &mut rng),
        })
        .collect();
    let est = server.process(&reports).expect("noise-only pipeline runs");
    assert!(est.position.is_finite());
    assert!(
        server.area().contains(est.position)
            || server.area().distance_to_boundary(est.position) < 1e-6
    );
}

/// Zero-magnitude CSI snapshots are dropped rather than panicking.
#[test]
fn zero_csi_snapshots_are_skipped() {
    let server = square_server(10.0);
    let grid = SubcarrierGrid::intel5300();
    let dead = CsiSnapshot {
        h: vec![Complex::ZERO; 30],
        grid: grid.clone(),
    };
    let reports = vec![CsiReport {
        site: ApSite::fixed(1, Point::new(1.0, 1.0)),
        burst: vec![dead],
    }];
    let readings = server.extract_readings(&reports);
    assert!(readings.is_empty(), "zero-power PDP must be filtered");
    assert!(server.process(&reports).is_ok());
}

/// Duplicate AP identities (two sites claiming AP 1 visit 0) still produce
/// a well-defined estimate — the pipeline treats them as distinct sites.
#[test]
fn duplicate_site_identities_tolerated() {
    let server = square_server(10.0);
    let readings = vec![
        PdpReading::new(ApSite::fixed(1, Point::new(1.0, 1.0)), 1e-5),
        PdpReading::new(ApSite::fixed(1, Point::new(9.0, 9.0)), 1e-7),
        PdpReading::new(ApSite::fixed(2, Point::new(9.0, 1.0)), 1e-6),
    ];
    let est = server.localize(&readings).expect("duplicates tolerated");
    assert!(est.position.is_finite());
}

/// Two readings at exactly the same position give a degenerate bisector;
/// the constraint builder must skip-or-survive it.
#[test]
fn coincident_ap_positions_survive() {
    let server = square_server(10.0);
    let p = Point::new(4.0, 4.0);
    let readings = vec![
        PdpReading::new(ApSite::fixed(1, p), 2e-6),
        PdpReading::new(ApSite::fixed(2, p), 1e-6),
        PdpReading::new(ApSite::fixed(3, Point::new(8.0, 8.0)), 5e-7),
    ];
    let est = server.localize(&readings).expect("coincident APs survive");
    assert!(est.position.is_finite());
    assert!(
        server.area().contains(est.position)
            || server.area().distance_to_boundary(est.position) < 1e-6
    );
}

/// A single reading cannot partition space: the estimate degrades to the
/// weighted-centroid tier — anchored at the only reporting site, which
/// beats the bare area center — and must not fail.
#[test]
fn single_reading_degenerates_gracefully() {
    let server = square_server(10.0);
    let readings = vec![PdpReading::new(
        ApSite::fixed(1, Point::new(1.0, 1.0)),
        1e-6,
    )];
    let est = server.localize(&readings).unwrap();
    assert_eq!(
        est.quality,
        nomloc::core::estimator::EstimateQuality::Centroid
    );
    assert!(est.position.distance(Point::new(1.0, 1.0)) < 1e-3);
    assert!(server.area().contains(est.position));
}

/// Readings whose implied half-planes all miss the venue entirely: every
/// judgement contradicts the boundary, so the judgement system is wholly
/// infeasible inside the area. Relaxation must sacrifice the judgements
/// (boundary rows carry weight 1000) and still return an in-area estimate.
#[test]
fn all_infeasible_judgements_are_relaxed_away() {
    let server = square_server(10.0);
    // AP 1 sits far east of the venue but reports the strongest PDP: the
    // bisector against each in-venue AP demands x ≥ 20-ish, which no point
    // of the 10×10 square satisfies.
    let readings = vec![
        PdpReading::new(ApSite::fixed(1, Point::new(30.0, 5.0)), 1e-4),
        PdpReading::new(ApSite::fixed(2, Point::new(9.0, 5.0)), 1e-6),
        PdpReading::new(ApSite::fixed(3, Point::new(9.0, 9.0)), 1e-7),
    ];
    let est = server.localize(&readings).expect("relaxation repairs it");
    assert!(
        est.relaxation_cost > 0.0,
        "some judgement must be sacrificed"
    );
    assert!(
        server.area().contains(est.position)
            || server.area().distance_to_boundary(est.position) < 1e-6,
        "estimate {} escaped the venue",
        est.position
    );
    // The failure is visible in the serving stats.
    let snap = server.stats_snapshot();
    assert_eq!(snap.counters.relaxations_triggered, 1);
    assert_eq!(snap.counters.estimate_failures, 0);
}

/// A custom venue built from public fields runs a full campaign.
#[test]
fn custom_venue_campaign_runs() {
    let boundary = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(9.0, 6.0));
    let plan = FloorPlan::builder(boundary)
        .rect_obstacle(Point::new(4.0, 2.5), Point::new(5.0, 3.5), Material::METAL)
        .build();
    let venue = Venue {
        name: "Studio",
        plan,
        static_aps: vec![Point::new(8.5, 0.5), Point::new(8.5, 5.5)],
        nomadic_home: Point::new(0.5, 0.5),
        nomadic_sites: vec![Point::new(3.0, 1.0), Point::new(3.0, 5.0)],
        test_sites: vec![
            Point::new(2.0, 3.0),
            Point::new(6.5, 1.0),
            Point::new(6.5, 5.0),
        ],
        radio: RadioConfig::default(),
    };
    let result = Campaign::new(venue, Deployment::nomadic(5))
        .packets_per_site(10)
        .trials_per_site(2)
        .seed(3)
        .run();
    assert_eq!(result.outcomes.len(), 3);
    assert!(result.mean_error().is_finite());
    assert_eq!(result.venue_name, "Studio");
}

/// Extreme ER (larger than the venue) still yields bounded, in-venue
/// estimates — the boundary constraints dominate runaway reports.
#[test]
fn huge_position_error_stays_bounded() {
    let result = Campaign::new(Venue::lab(), Deployment::nomadic(6))
        .packets_per_site(10)
        .trials_per_site(2)
        .position_error(50.0)
        .seed(4)
        .run();
    let (min, max) = Venue::lab().plan.boundary().bounding_box();
    let diameter = min.distance(max);
    for e in result.site_mean_errors() {
        assert!(e <= diameter, "error {e} exceeds venue diameter");
    }
}

/// Campaigns with one packet per site and one trial run end to end.
#[test]
fn minimal_sampling_campaign() {
    let result = Campaign::new(Venue::lobby(), Deployment::Static)
        .packets_per_site(1)
        .trials_per_site(1)
        .seed(5)
        .run();
    assert_eq!(result.outcomes.len(), 12);
    assert!(result.mean_error().is_finite());
}

/// All knobs at once: antennas + window + carrier + ER + fleet.
#[test]
fn everything_enabled_at_once() {
    let result = Campaign::new(
        Venue::lab(),
        Deployment::Fleet {
            nomads: 2,
            steps: 4,
        },
    )
    .packets_per_site(8)
    .trials_per_site(1)
    .position_error(1.0)
    .rx_antennas(2)
    .pdp_window(nomloc::dsp::Window::Hann)
    .carrier_blocking(true)
    .center_method(nomloc::lp::center::CenterMethod::Analytic)
    .seed(6)
    .run();
    assert!(result.mean_error().is_finite());
    assert!(result.slv().is_finite());
}
