//! End-to-end loopback test: a real daemon on `127.0.0.1:0`, the load
//! generator driving it over 4 parallel connections with ≥1k pipelined
//! requests, and a bit-exact comparison of every networked estimate
//! against an in-process `process_batch` run over the same workload.
//!
//! This is the protocol's determinism contract: `f64`s cross the wire as
//! raw bits and the pipeline is RNG-free, so serving over TCP must change
//! nothing — not even the low bit of a coordinate.
//!
//! The contract is pinned on **both socket backends**: the readiness-
//! driven event loop (the Unix default) and the thread-per-connection
//! fallback must be observationally indistinguishable down to the bit.

use nomloc_core::scenario::Venue;
use nomloc_core::server::CsiReport;
use nomloc_core::{ApSite, LocalizationServer};
use nomloc_net::wire::WireEstimate;
use nomloc_net::{loadgen, spawn, DaemonConfig, ErrorCode, LoadgenConfig, SocketBackend};
use nomloc_rfsim::{Environment, RadioConfig, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const REQUESTS: usize = 1000;
const CONNECTIONS: usize = 4;

/// Splitmix-derived per-request RNG (same discipline the CLI workload
/// generator uses), so the workload is reproducible request by request.
fn request_rng(seed: u64, request: usize) -> StdRng {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(request as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// A mixed workload: every 8th request carries real simulated CSI (the
/// expensive full pipeline); the rest carry empty bursts (the cheap
/// boundary-only solve). Mixing keeps a 1k-request debug run fast while
/// still exercising real estimates through the wire.
fn workload(venue: &Venue) -> Vec<Vec<CsiReport>> {
    let env = Environment::new(venue.plan.clone(), RadioConfig::default());
    let grid = SubcarrierGrid::intel5300();
    let aps = venue.static_deployment();
    (0..REQUESTS)
        .map(|r| {
            let mut rng = request_rng(2014, r);
            let object = venue.test_sites[r % venue.test_sites.len()];
            aps.iter()
                .enumerate()
                .map(|(i, &ap)| CsiReport {
                    site: ApSite::fixed(i + 1, ap),
                    burst: if r % 8 == 0 {
                        env.sample_csi_burst(object, ap, &grid, 1, &mut rng)
                    } else {
                        Vec::new()
                    },
                })
                .collect()
        })
        .collect()
}

/// The bit pattern of a wire estimate: equality here is *stronger* than
/// `PartialEq` (which would let `-0.0 == 0.0` slide).
fn estimate_bits(e: &WireEstimate) -> [u64; 9] {
    [
        e.x.to_bits(),
        e.y.to_bits(),
        e.relaxation_cost.to_bits(),
        e.region_area.to_bits(),
        e.n_constraints,
        e.n_winning_pieces,
        e.lp_iterations,
        e.warm_start_hits,
        e.phase1_pivots_saved,
    ]
}

mod loopback_loadgen_matches_in_process_bit_for_bit {
    use super::SocketBackend;

    #[test]
    fn threaded() {
        super::loopback_loadgen_matches_in_process_bit_for_bit(SocketBackend::Threaded);
    }

    #[test]
    fn event_loop() {
        super::loopback_loadgen_matches_in_process_bit_for_bit(SocketBackend::EventLoop);
    }
}

fn loopback_loadgen_matches_in_process_bit_for_bit(backend: SocketBackend) {
    let venue = Venue::lab();
    let batch = workload(&venue);

    // The reference run: a second server instance, same venue geometry,
    // solving the identical batch in this process.
    let reference = LocalizationServer::new(venue.plan.boundary().clone()).with_workers(2);
    let expected = reference.process_batch(&batch);

    let daemon_server = LocalizationServer::new(venue.plan.boundary().clone()).with_workers(2);
    let handle = spawn(
        daemon_server,
        DaemonConfig {
            socket_backend: backend,
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn loopback daemon");

    let report = loadgen::run(
        handle.local_addr(),
        &LoadgenConfig {
            connections: CONNECTIONS,
            ..LoadgenConfig::default()
        },
        &batch,
    )
    .expect("loadgen run");

    assert_eq!(report.outcomes.len(), REQUESTS);
    // No admission pressure at these settings: nothing may be rejected.
    assert_eq!(report.error_count(ErrorCode::Overloaded), 0);
    assert_eq!(report.error_count(ErrorCode::Malformed), 0);
    assert_eq!(report.error_count(ErrorCode::DeadlineExceeded), 0);

    // Every networked outcome equals the in-process one — bit for bit for
    // estimates, error-code-for-error for failures.
    let mut compared_ok = 0usize;
    for (i, (outcome, expect)) in report.outcomes.iter().zip(&expected).enumerate() {
        match (&outcome.reply, expect) {
            (Ok(wire_est), Ok(core_est)) => {
                assert_eq!(
                    estimate_bits(wire_est),
                    estimate_bits(&WireEstimate::from_core(core_est)),
                    "request {i}: networked estimate differs from in-process"
                );
                compared_ok += 1;
            }
            (Err(reply), Err(_)) => {
                assert_eq!(
                    reply.code,
                    ErrorCode::EstimateFailed,
                    "request {i}: unexpected error code"
                );
            }
            (got, want) => {
                panic!("request {i}: networked {got:?} vs in-process {want:?}");
            }
        }
    }
    assert!(
        compared_ok > REQUESTS / 2,
        "too few successful estimates to be meaningful: {compared_ok}"
    );

    // Latency quantiles are reported and ordered.
    let p50 = report.latency_quantile(0.50);
    let p95 = report.latency_quantile(0.95);
    let p99 = report.latency_quantile(0.99);
    assert!(p50 > Duration::ZERO, "p50 must be positive");
    assert!(p50 <= p95 && p95 <= p99, "quantiles out of order");
    assert!(report.throughput_rps() > 0.0);

    // Clean drain: zero protocol errors, every request answered exactly
    // once, queue depth bounded by the configured capacity.
    let health = handle.shutdown();
    assert_eq!(health.protocol_errors, 0, "protocol errors: {health}");
    assert_eq!(
        health.requests_enqueued, REQUESTS as u64,
        "admission mismatch: {health}"
    );
    assert_eq!(
        health.requests_ok, compared_ok as u64,
        "ok-count mismatch: {health}"
    );
    assert!(health.queue_depth_peak <= 1024);
    assert!(health.batches_formed > 0);
    // Cross-connection coalescing actually happened: fewer batches than
    // requests means at least some micro-batch held more than one request.
    assert!(
        health.batches_formed < REQUESTS as u64,
        "no coalescing at all: {health}"
    );
}
