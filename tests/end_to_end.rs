//! End-to-end integration tests: the full pipeline across every crate.

use nomloc::core::experiment::{Campaign, Deployment};
use nomloc::core::proximity::ApSite;
use nomloc::core::scenario::Venue;
use nomloc::core::server::{CsiReport, LocalizationServer};
use nomloc::rfsim::{Environment, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_campaign(venue: Venue, deployment: Deployment, seed: u64) -> Campaign {
    Campaign::new(venue, deployment)
        .packets_per_site(15)
        .trials_per_site(2)
        .seed(seed)
}

#[test]
fn lab_campaign_is_deterministic_and_bounded() {
    let a = small_campaign(Venue::lab(), Deployment::nomadic(6), 5).run();
    let b = small_campaign(Venue::lab(), Deployment::nomadic(6), 5).run();
    assert_eq!(a.site_mean_errors(), b.site_mean_errors());
    let (min, max) = Venue::lab().plan.boundary().bounding_box();
    let diameter = min.distance(max);
    for e in a.site_mean_errors() {
        assert!(e >= 0.0 && e <= diameter);
    }
}

#[test]
fn lobby_campaign_produces_all_sites() {
    let r = small_campaign(Venue::lobby(), Deployment::Static, 3).run();
    assert_eq!(r.outcomes.len(), 12);
    assert_eq!(r.proximity_accuracy.len(), 12);
    assert!(r.error_cdf().len() == 12);
}

#[test]
fn estimates_always_inside_the_venue() {
    // Run the raw server pipeline at several truths and check containment;
    // the SP boundary constraints must keep every estimate in the polygon.
    for venue in [Venue::lab(), Venue::lobby()] {
        let env = Environment::new(venue.plan.clone(), venue.radio.clone());
        let server = LocalizationServer::new(venue.plan.boundary().clone());
        let grid = SubcarrierGrid::intel5300();
        let mut rng = StdRng::seed_from_u64(11);
        for &object in venue.test_sites.iter().take(4) {
            let reports: Vec<CsiReport> = venue
                .static_deployment()
                .iter()
                .enumerate()
                .map(|(i, &ap)| CsiReport {
                    site: ApSite::fixed(i + 1, ap),
                    burst: env.sample_csi_burst(object, ap, &grid, 10, &mut rng),
                })
                .collect();
            let est = server.process(&reports).expect("pipeline succeeds");
            let boundary = venue.plan.boundary();
            assert!(
                boundary.contains(est.position)
                    || boundary.distance_to_boundary(est.position) < 1e-6,
                "{}: estimate {} escaped the boundary",
                venue.name,
                est.position
            );
        }
    }
}

#[test]
fn nomadic_measurements_shrink_the_feasible_region() {
    let venue = Venue::lab();
    let env = Environment::new(venue.plan.clone(), venue.radio.clone());
    let server = LocalizationServer::new(venue.plan.boundary().clone());
    let grid = SubcarrierGrid::intel5300();
    let mut rng = StdRng::seed_from_u64(21);
    let object = venue.test_sites[0];

    let mut reports: Vec<CsiReport> = venue
        .static_deployment()
        .iter()
        .enumerate()
        .map(|(i, &ap)| CsiReport {
            site: ApSite::fixed(i + 1, ap),
            burst: env.sample_csi_burst(object, ap, &grid, 15, &mut rng),
        })
        .collect();
    let before = server.process(&reports).unwrap();

    for (v, &p) in venue.nomadic_sites.iter().enumerate() {
        reports.push(CsiReport {
            site: ApSite::nomadic(1, v + 1, p),
            burst: env.sample_csi_burst(object, p, &grid, 15, &mut rng),
        });
    }
    let after = server.process(&reports).unwrap();
    assert!(after.n_constraints > before.n_constraints);
    assert!(
        after.region_area <= before.region_area + 1e-9,
        "downscoping must not grow the region: {} → {}",
        before.region_area,
        after.region_area
    );
}

#[test]
fn ten_packets_suffice_for_finite_results() {
    let r = small_campaign(Venue::lab(), Deployment::Static, 8)
        .packets_per_site(10)
        .trials_per_site(1)
        .run();
    assert!(r.mean_error().is_finite());
    assert!(r.slv().is_finite());
    assert!(r.mean_proximity_accuracy().is_finite());
}

#[test]
fn campaign_with_position_error_still_valid() {
    let r = small_campaign(Venue::lobby(), Deployment::nomadic(6), 13)
        .position_error(3.0)
        .run();
    assert!(r.mean_error().is_finite());
    let (min, max) = Venue::lobby().plan.boundary().bounding_box();
    assert!(r.mean_error() <= min.distance(max));
}
